//! A shared worker pool serving concurrent speculative regions.
//!
//! Historically each engine invocation spawned its own gang of OS threads
//! inside a [`std::thread::scope`] and tore them down at region end. That is
//! fine for one region at a time, but region-server mode (see
//! `DESIGN.md` §"Region server") multiplexes *many* independent regions over
//! one long-lived pool, so thread creation moves out of the region hot path
//! and concurrent regions share a bounded set of cores.
//!
//! The abstraction boundary is [`RegionExecutor`]: a region hands the
//! executor a *gang* of role closures (workers, checker shards) plus a
//! *local* closure that runs on the submitting thread (the DOMORE scheduler,
//! or nothing for SPECCROSS), and the call returns only when every role has
//! finished. Two implementations:
//!
//! * [`ScopedExecutor`] — spawns a fresh scoped thread per role, exactly the
//!   pre-pool behaviour. This is the default used by
//!   `SpecCrossEngine::execute` / `DomoreRuntime::execute`.
//! * [`WorkerPool`] — `N` long-lived threads. Gangs are admitted FIFO and
//!   *all-or-nothing*: a gang of `k` roles waits until `k` slots are free and
//!   it is at the head of the ticket queue, then occupies exactly `k` slots
//!   until its roles retire (each role frees its slot the moment it
//!   finishes). FIFO tickets give fairness — a wide gang cannot be starved by
//!   a stream of narrow ones — and all-or-nothing admission makes deadlock
//!   impossible: admitted gangs always run to completion because every
//!   admitted role has a dedicated slot.
//!
//! Role panics are contained: a pool thread catches the unwind, the gang
//! still completes, and the *first* captured payload is re-raised on the
//! submitting thread after the gang retires — the same observable behaviour
//! as a panicking scoped thread, without poisoning pool threads or
//! neighbouring regions.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::telemetry::ServerRegistry;
use crate::wait::{AdaptiveSpin, Parker, PARK_SLICE};

/// One member of a region's gang: a worker or checker-shard body. Boxed so
/// heterogeneous roles (workers and checkers of one pass) travel in one
/// `Vec`, bounded by the caller's stack lifetime `'s`.
pub type Role<'s> = Box<dyn FnOnce() + Send + 's>;

/// What one [`RegionExecutor::run_gang`] call observed, for telemetry
/// attribution. Engines forward `queue_wait_ns` to their region's
/// [`crate::telemetry::RegionTelemetry`] cell; executors without an
/// admission queue ([`ScopedExecutor`]) return zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GangStats {
    /// Nanoseconds this gang waited in the admission queue before its slots
    /// were claimed.
    pub queue_wait_ns: u64,
}

/// Executes one region *pass*: a gang of concurrent roles plus a closure for
/// the submitting thread. `run_gang` must not return before every role has
/// finished — engine code relies on this to keep borrowing pass-local state
/// from the stack, exactly as it did under [`std::thread::scope`].
///
/// If any role panics, implementations must re-raise the panic on the
/// submitting thread after the whole gang has retired (mirroring scoped-join
/// semantics). `local` runs concurrently with the roles on the calling
/// thread.
pub trait RegionExecutor: Sync {
    /// Runs `roles` concurrently, runs `local` on the calling thread, and
    /// returns once all of them have finished. The returned [`GangStats`]
    /// carry per-call telemetry (admission queue wait); callers that don't
    /// attribute telemetry simply ignore them.
    fn run_gang<'s>(&self, roles: Vec<Role<'s>>, local: Box<dyn FnOnce() + 's>) -> GangStats;

    /// Maximum gang width this executor can run concurrently, or `None` when
    /// unbounded (a fresh thread per role). Engines validate their
    /// `workers + checker shards` demand against this up front so an
    /// oversized region fails fast instead of wedging the admission queue.
    fn capacity(&self) -> Option<usize> {
        None
    }
}

/// The pre-pool execution strategy: one fresh scoped thread per role.
///
/// Semantically identical to the engines' original inline
/// [`std::thread::scope`] blocks (including panic propagation on join), kept
/// as the default so solo `execute()` calls behave exactly as before the
/// region-server refactor.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScopedExecutor;

impl RegionExecutor for ScopedExecutor {
    fn run_gang<'s>(&self, roles: Vec<Role<'s>>, local: Box<dyn FnOnce() + 's>) -> GangStats {
        std::thread::scope(|scope| {
            for role in roles {
                scope.spawn(role);
            }
            local();
        });
        GangStats::default()
    }
}

/// A job as stored on the pool's queue. Roles are lifetime-erased to
/// `'static` on submission; see the safety argument in
/// [`WorkerPool::run_gang`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Countdown latch the submitting thread blocks on until its gang retires,
/// using the repo-wide spin-then-park discipline ([`AdaptiveSpin`] +
/// bounded [`Parker`] slices) rather than a blocking join.
struct GangLatch {
    remaining: AtomicUsize,
    submitter: Parker,
    /// First panic payload captured from any role of this gang, re-raised on
    /// the submitter once the gang has fully retired.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl GangLatch {
    fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            submitter: Parker::new(),
            panic: Mutex::new(None),
        }
    }

    /// Role retirement: decrement and wake the submitter on the last one.
    fn retire(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.submitter.unpark();
        }
    }

    /// Blocks until every role has retired. Spin-then-park: parks are timed,
    /// so a lost unpark costs one [`PARK_SLICE`], never liveness.
    fn wait(&self) {
        let mut spin = AdaptiveSpin::new();
        while self.remaining.load(Ordering::Acquire) != 0 {
            if spin.should_park() {
                self.submitter.park_timeout(PARK_SLICE);
            }
        }
    }
}

/// FIFO ticket lock over the pool's free slots: gangs are served strictly in
/// submission order, and a gang is admitted only when *all* of its slots are
/// available at once.
#[derive(Debug)]
struct Admission {
    free: usize,
    next_ticket: u64,
    now_serving: u64,
}

struct PoolShared {
    /// Pending role jobs; pool threads pop from the front.
    queue: Mutex<VecDeque<Job>>,
    /// Signals pool threads that the queue is non-empty (or shutting down).
    work_cv: Condvar,
    /// Gang admission state; `admit_cv` wakes ticket holders when slots free
    /// up or the serving counter advances.
    admission: Mutex<Admission>,
    admit_cv: Condvar,
    shutdown: std::sync::atomic::AtomicBool,
    /// Telemetry registry, set once by [`WorkerPool::attach_telemetry`].
    /// When unset every hook is a single relaxed-ish `OnceLock` load — the
    /// untelemetered hot path stays effectively free.
    telemetry: OnceLock<Arc<ServerRegistry>>,
}

/// A fixed-width pool of long-lived worker threads executing region gangs
/// with FIFO all-or-nothing admission.
///
/// The pool is the engine room of region-server mode: many independent
/// regions call [`WorkerPool::run_gang`] concurrently (one pass at a time
/// each), and passes interleave at gang granularity. Dropping the pool joins
/// every thread.
///
/// # Example
///
/// ```
/// use crossinvoc_runtime::pool::{RegionExecutor, Role, WorkerPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// let roles: Vec<Role<'_>> = (0..4)
///     .map(|_| {
///         let hits = &hits;
///         Box::new(move || {
///             hits.fetch_add(1, Ordering::Relaxed);
///         }) as Role<'_>
///     })
///     .collect();
/// pool.run_gang(roles, Box::new(|| {}));
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `size` long-lived worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` — a pool that can never admit a gang is a
    /// configuration error, not a runtime condition.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "WorkerPool requires at least one thread");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            admission: Mutex::new(Admission {
                free: size,
                next_ticket: 0,
                now_serving: 0,
            }),
            admit_cv: Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            telemetry: OnceLock::new(),
        });
        let threads = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crossinvoc-pool-{i}"))
                    .spawn(move || pool_thread(&shared, i))
                    .expect("spawn pool thread")
            })
            .collect();
        Self {
            shared,
            threads,
            size,
        }
    }

    /// Number of pool threads — the widest gang this pool can admit.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Attaches a telemetry registry: from now on every gang admission
    /// reports its queue wait, every slot release updates the busy gauge,
    /// and pool threads attribute their busy time to per-slot shards. First
    /// call wins (returns `false` if a registry was already attached); the
    /// registry should be sized with [`WorkerPool::size`] slots.
    pub fn attach_telemetry(&self, registry: Arc<ServerRegistry>) -> bool {
        self.shared.telemetry.set(registry).is_ok()
    }

    /// Blocks until `k` slots are free *and* this caller holds the oldest
    /// outstanding ticket, then claims the slots. FIFO tickets prevent a
    /// wide gang from being starved by narrow ones slipping past it.
    fn admit(&self, k: usize) {
        let mut adm = self.shared.admission.lock();
        let ticket = adm.next_ticket;
        adm.next_ticket += 1;
        while adm.now_serving != ticket || adm.free < k {
            self.shared.admit_cv.wait(&mut adm);
        }
        adm.free -= k;
        adm.now_serving += 1;
        // The next ticket holder may already be admissible (free slots
        // remain); condvar wakeups are broadcast because waiters filter on
        // their own ticket number.
        self.shared.admit_cv.notify_all();
    }

    /// Returns one slot to the pool (called as each role retires, so
    /// follow-on gangs start as soon as width allows, not at gang end).
    fn release_slot(shared: &PoolShared) {
        let mut adm = shared.admission.lock();
        adm.free += 1;
        drop(adm);
        shared.admit_cv.notify_all();
        if let Some(registry) = shared.telemetry.get() {
            registry.note_slot_release();
        }
    }
}

impl RegionExecutor for WorkerPool {
    /// Runs a gang on the shared pool.
    ///
    /// # Panics
    ///
    /// Panics if the gang is wider than the pool ([`WorkerPool::size`]) —
    /// such a gang could never be admitted and would wedge the FIFO queue.
    /// Engines translate [`RegionExecutor::capacity`] into a typed
    /// configuration error before reaching this point.
    ///
    /// If a role panics, the first captured payload is re-raised here after
    /// the whole gang has retired (scoped-join semantics).
    fn run_gang<'s>(&self, roles: Vec<Role<'s>>, local: Box<dyn FnOnce() + 's>) -> GangStats {
        let k = roles.len();
        if k == 0 {
            local();
            return GangStats::default();
        }
        assert!(
            k <= self.size,
            "gang of {k} roles exceeds pool capacity {}",
            self.size
        );
        let enqueued = Instant::now();
        self.admit(k);
        let queue_wait_ns = enqueued.elapsed().as_nanos() as u64;
        if let Some(registry) = self.shared.telemetry.get() {
            registry.note_admission(k, queue_wait_ns);
        }

        let latch = Arc::new(GangLatch::new(k));
        {
            let mut queue = self.shared.queue.lock();
            for role in roles {
                // SAFETY: the role borrows stack data of lifetime `'s`. The
                // erased box is only ever *run* (or dropped) by a pool thread
                // before `latch.retire()` for that role, and this function
                // does not return — not even by unwinding out of `local`,
                // thanks to the `WaitGuard` below — until every role has
                // retired. The borrowed data therefore strictly outlives
                // every use of the erased closure.
                let role: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Job>(role) };
                let latch = Arc::clone(&latch);
                let shared = Arc::clone(&self.shared);
                queue.push_back(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(role));
                    if let Err(payload) = outcome {
                        let mut slot = latch.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    // Free the slot before retiring the latch so a submitter
                    // woken by `retire` observes the slot available.
                    WorkerPool::release_slot(&shared);
                    latch.retire();
                }));
            }
        }
        self.shared.work_cv.notify_all();

        /// Blocks on the latch even if `local` unwinds: the soundness of the
        /// lifetime erasure above requires the stack frame to stay alive
        /// until every role has retired, panic or not.
        struct WaitGuard<'a>(&'a GangLatch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }

        let guard = WaitGuard(&latch);
        local();
        drop(guard);

        let payload = latch.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        GangStats { queue_wait_ns }
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.size)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Pool thread main loop: pop a job, run it, repeat until shutdown. Jobs
/// arrive pre-wrapped in `catch_unwind`, so pool threads never die to a
/// region's panic. `slot` is this thread's index, used to attribute busy
/// time to its telemetry shard without cross-thread contention.
fn pool_thread(shared: &PoolShared, slot: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                shared.work_cv.wait(&mut queue);
            }
        };
        match shared.telemetry.get() {
            Some(registry) => {
                let started = Instant::now();
                job();
                registry.add_busy_ns(slot, started.elapsed().as_nanos() as u64);
            }
            None => job(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn gang<'s>(n: usize, f: impl Fn(usize) + Send + Sync + 's) -> Vec<Role<'s>> {
        let f = Arc::new(f);
        (0..n)
            .map(|i| {
                let f = Arc::clone(&f);
                Box::new(move || f(i)) as Role<'s>
            })
            .collect()
    }

    #[test]
    fn scoped_executor_runs_all_roles_and_local() {
        let hits = AtomicUsize::new(0);
        let local_ran = AtomicUsize::new(0);
        ScopedExecutor.run_gang(
            gang(3, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                local_ran.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(local_ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_runs_gangs_borrowing_the_stack() {
        let pool = WorkerPool::new(4);
        let mut cells = vec![0u64; 4];
        {
            let slices: Vec<&mut u64> = cells.iter_mut().collect();
            let roles: Vec<Role<'_>> = slices
                .into_iter()
                .enumerate()
                .map(|(i, cell)| {
                    Box::new(move || {
                        *cell = i as u64 + 1;
                    }) as Role<'_>
                })
                .collect();
            pool.run_gang(roles, Box::new(|| {}));
        }
        assert_eq!(cells, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pool_serves_more_gangs_than_threads() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run_gang(
                gang(2, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }),
                Box::new(|| {}),
            );
        }
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(3));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let hits = Arc::clone(&hits);
                scope.spawn(move || {
                    for _ in 0..25 {
                        let hits = &hits;
                        pool.run_gang(
                            gang(2, move |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }),
                            Box::new(|| {}),
                        );
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 25 * 2);
    }

    #[test]
    fn role_panic_reraises_on_submitter_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_gang(
                gang(2, |i| {
                    if i == 1 {
                        panic!("role boom");
                    }
                }),
                Box::new(|| {}),
            );
        }));
        assert!(result.is_err(), "panic must re-raise on the submitter");
        // The pool threads survived the panic and serve the next gang.
        let ok = AtomicUsize::new(0);
        pool.run_gang(
            gang(2, |_| {
                ok.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {}),
        );
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn local_runs_concurrently_with_roles() {
        // local and the role hand a token back and forth: only possible if
        // they genuinely overlap.
        let pool = WorkerPool::new(1);
        let stage = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&stage);
        let roles: Vec<Role<'_>> = vec![Box::new(move || {
            while s.load(Ordering::Acquire) != 1 {
                std::thread::yield_now();
            }
            s.store(2, Ordering::Release);
        })];
        pool.run_gang(
            roles,
            Box::new(|| {
                stage.store(1, Ordering::Release);
                while stage.load(Ordering::Acquire) != 2 {
                    std::thread::yield_now();
                }
            }),
        );
        assert_eq!(stage.load(Ordering::Acquire), 2);
    }

    #[test]
    fn oversized_gang_panics_fast() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_gang(gang(3, |_| {}), Box::new(|| {}));
        }));
        assert!(result.is_err());
        assert_eq!(pool.capacity(), Some(2));
    }

    #[test]
    fn empty_gang_runs_local_only() {
        let pool = WorkerPool::new(1);
        let ran = AtomicUsize::new(0);
        pool.run_gang(
            Vec::new(),
            Box::new(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn telemetry_hooks_observe_admissions_and_busy_time() {
        let pool = WorkerPool::new(2);
        let registry = Arc::new(ServerRegistry::new(pool.size()));
        assert!(pool.attach_telemetry(Arc::clone(&registry)));
        // Second attach is refused: first registry keeps the pool.
        assert!(!pool.attach_telemetry(Arc::new(ServerRegistry::new(2))));

        let stats = pool.run_gang(
            gang(2, |_| {
                std::thread::sleep(Duration::from_millis(2));
            }),
            Box::new(|| {}),
        );
        let snap = registry.snapshot();
        assert_eq!(snap.pool.admissions, 1);
        assert_eq!(snap.pool.queue_wait.count, 1);
        assert_eq!(snap.pool.slots_busy, 0, "all slots released after gang");
        assert!(
            snap.pool.busy_ns >= 2 * 1_000_000,
            "two 2ms roles must register busy time, got {}",
            snap.pool.busy_ns
        );
        assert!(stats.queue_wait_ns < 10_000_000_000, "sane queue wait");

        // Empty gangs skip admission entirely.
        let stats = pool.run_gang(Vec::new(), Box::new(|| {}));
        assert_eq!(stats, GangStats::default());
        assert_eq!(registry.snapshot().pool.admissions, 1);
    }

    #[test]
    fn admission_is_fifo_all_or_nothing() {
        // A width-2 gang submitted while both slots are busy must still be
        // admitted ahead of a width-1 gang submitted after it.
        let pool = Arc::new(WorkerPool::new(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let release = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|scope| {
            // Occupy both slots.
            let p = Arc::clone(&pool);
            let r = Arc::clone(&release);
            scope.spawn(move || {
                let r2 = Arc::clone(&r);
                p.run_gang(
                    gang(2, move |_| {
                        while r2.load(Ordering::Acquire) == 0 {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }),
                    Box::new(|| {}),
                );
            });
            std::thread::sleep(Duration::from_millis(20));

            // Wide gang first, narrow gang second.
            let p = Arc::clone(&pool);
            let o = Arc::clone(&order);
            scope.spawn(move || {
                let o2 = Arc::clone(&o);
                p.run_gang(
                    gang(2, move |i| {
                        if i == 0 {
                            o2.lock().push("wide");
                        }
                    }),
                    Box::new(|| {}),
                );
            });
            std::thread::sleep(Duration::from_millis(20));
            let p = Arc::clone(&pool);
            let o = Arc::clone(&order);
            scope.spawn(move || {
                let o2 = Arc::clone(&o);
                p.run_gang(
                    gang(1, move |_| {
                        o2.lock().push("narrow");
                    }),
                    Box::new(|| {}),
                );
            });
            std::thread::sleep(Duration::from_millis(20));
            release.store(1, Ordering::Release);
        });

        assert_eq!(*order.lock(), vec!["wide", "narrow"]);
    }
}
