//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (`fn name(arg in strategy, …)`
//! items), `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, the
//! [`strategy::Strategy`] trait, integer-range / tuple / `any::<T>()`
//! strategies, `Just`, `prop_map`, and [`collection::vec`].
//!
//! Unlike upstream there is no shrinking; instead every run is fully
//! deterministic — the RNG seed is derived from the test's name, and the
//! failing case index is printed so a failure replays identically. The case
//! count defaults to 64 and can be overridden with `PROPTEST_CASES`.

/// The strategy abstraction: a recipe for generating values from an RNG.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of type [`Strategy::Value`] from a seeded RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types generable without parameters via [`crate::any`].
    pub trait Arbitrary {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::new()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic case runner and its RNG.
pub mod test_runner {
    /// SplitMix64: tiny, seedable, and statistically adequate for test-case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from `seed`.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a over the test name: a stable per-test base seed.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Runs `body` once per case with a deterministic per-case RNG; on panic,
    /// reports the test name and case index (sufficient to replay) before
    /// resuming the unwind.
    pub fn run_cases(name: &str, mut body: impl FnMut(&mut TestRng)) {
        let base = name_seed(name);
        for case in 0..case_count() {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest case {case} of `{name}` failed (deterministic; rerun reproduces it)"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Sub-module namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u32..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec((0usize..8, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _) in v {
                prop_assert!(n < 8);
            }
        }

        #[test]
        fn prop_map_applies(sq in (0u64..100).prop_map(|x| x * x)) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
        }

        #[test]
        fn just_is_constant(v in Just(41)) {
            prop_assert_ne!(v, 40);
            prop_assert_eq!(v + 1, 42);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run_cases("determinism_probe", |rng| {
                out.push((0u64..1000).generate(rng));
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
