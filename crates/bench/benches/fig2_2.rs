//! Fig. 2.2 — fragility of analysis-based parallelization.
//!
//! The thesis shows PolyBench kernels that DOALL-parallelize cleanly with
//! statically declared arrays but defeat the compiler once the same data
//! moves behind pointers. The PIR analog: each kernel is built twice —
//! directly indexed (`A[i]`, analyzable) and indirected through an identity
//! index array (`A[idx[i]]`, runtime-identical but statically opaque). The
//! classifier parallelizes the first and must refuse the second, and the
//! speedup collapse mirrors the figure.

use crossinvoc_bench::write_csv;
use crossinvoc_pir::ir::{Expr, Program, ProgramBuilder, StmtId};
use crossinvoc_pir::pdg::Pdg;
use crossinvoc_pir::techniques::{classify_loop, Technique};
use crossinvoc_sim::prelude::*;

/// Builds one of the mock PolyBench kernels; `indirect` routes every store
/// through the identity index array.
fn kernel(name: &str, indirect: bool) -> (Program, StmtId) {
    let n = 64i64;
    let mut b = ProgramBuilder::new();
    let a = b.array("A", n as usize);
    let src = b.array("S", n as usize);
    let idx = b.array("idx", n as usize);
    let i = b.var("i");
    let k = b.var("k");
    let t = b.var("t");
    // idx[i] = i — the identity mapping the compiler cannot see through.
    let init = b.var("init");
    b.for_loop(init, Expr::Const(0), Expr::Const(n), |b| {
        b.store(idx, Expr::Var(init), Expr::Var(init));
    });
    let weight = match name {
        "2mm" => 3,
        "covariance" => 5,
        _ => 2,
    };
    let l = b.for_loop(i, Expr::Const(0), Expr::Const(n), |b| {
        b.load(t, src, Expr::Var(i));
        if indirect {
            b.load(k, idx, Expr::Var(i));
            b.store(
                a,
                Expr::Var(k),
                Expr::mul(Expr::Var(t), Expr::Const(weight)),
            );
        } else {
            b.store(
                a,
                Expr::Var(i),
                Expr::mul(Expr::Var(t), Expr::Const(weight)),
            );
        }
    });
    (b.finish(), l)
}

fn main() {
    println!("Fig. 2.2: performance sensitivity to memory analysis");
    println!(
        "{:<14} {:>16} {:>18}",
        "kernel", "static arrays", "dynamic (indirect)"
    );
    let cost = CostModel::default();
    let threads = 8;
    let mut rows = Vec::new();
    for name in ["2mm", "jacobi-2d", "covariance", "gramschmidt", "seidel"] {
        let mut speedups = Vec::new();
        for indirect in [false, true] {
            let (p, l) = kernel(name, indirect);
            let pdg = Pdg::build(&p, l);
            let applicability = classify_loop(&p, &pdg);
            // DOALL → parallel speedup; anything else stays sequential
            // (the figure's "blocks parallelization" outcome).
            let speedup = if applicability.best() == Technique::Doall {
                let w = UniformWorkload::independent(200, 64, 3_000);
                let seq = sequential(&w, &cost).total_ns;
                barrier(&w, threads, &cost).speedup_over(seq)
            } else {
                1.0
            };
            speedups.push(speedup);
        }
        println!("{:<14} {:>15.2}x {:>17.2}x", name, speedups[0], speedups[1]);
        rows.push(format!("{},{:.4},{:.4}", name, speedups[0], speedups[1]));
    }
    write_csv("fig2_2", "kernel,static_speedup,dynamic_speedup", &rows);
}
