//! Ablation — DOMORE vs. the Inspector-Executor baseline (§3.5.3).
//!
//! IE also uses runtime dependence information, but (1) its inspection is
//! serialized with execution and (2) it still barriers at every invocation
//! boundary. This target quantifies both gaps on the DOMORE benchmark set:
//! the same address streams, the same per-iteration inspection cost, only
//! the overlap discipline differs.

use crossinvoc_bench::{domore_policy, write_csv};
use crossinvoc_sim::inspector::inspector_executor;
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Ablation: DOMORE vs Inspector-Executor (8 and 24 threads)");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9}",
        "Benchmark", "IE@8", "DM@8", "IE@24", "DM@24"
    );
    let cost = CostModel::default();
    let mut rows = Vec::new();
    let mut domore_wins = 0usize;
    let mut total = 0usize;
    for info in registry().into_iter().filter(|b| b.domore) {
        let model = info.model(Scale::Figure);
        let seq = sequential(model.as_ref(), &cost).total_ns;
        let mut vals = Vec::new();
        for threads in [8usize, 24] {
            let ie = inspector_executor(model.as_ref(), threads, &cost).speedup_over(seq);
            let mut policy = domore_policy(&info, Scale::Figure);
            let dm = domore(
                model.as_ref(),
                threads.saturating_sub(1).max(1),
                policy.as_mut(),
                &cost,
            )
            .speedup_over(seq);
            vals.push((ie, dm));
        }
        println!(
            "{:<16} {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x",
            info.name, vals[0].0, vals[0].1, vals[1].0, vals[1].1
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            info.name, vals[0].0, vals[0].1, vals[1].0, vals[1].1
        ));
        total += 1;
        domore_wins += usize::from(vals[1].1 > vals[1].0);
    }
    println!("(DOMORE beats IE at 24 threads on {domore_wins}/{total} programs)");
    write_csv(
        "ie_compare",
        "benchmark,ie_8,domore_8,ie_24,domore_24",
        &rows,
    );
}
