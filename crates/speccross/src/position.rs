//! Epoch/task position tracking (§4.2.1).
//!
//! Every worker publishes its current *epoch number* (speculative barriers
//! passed) and *task number* (tasks started since the last barrier). The pair
//! must update atomically — the thesis packs them into one 64-bit word
//! written with a single store on TSO hardware; we do the same with an
//! `AtomicU64` (which additionally gives well-defined cross-architecture
//! semantics via release/acquire ordering).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// A worker's progress coordinate: `(epoch, task)` with lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Speculative barriers passed (the `A` of the thesis' `<A,B>` labels).
    pub epoch: u32,
    /// Tasks started within the current epoch (the `B`).
    pub task: u32,
}

impl Position {
    /// The origin position: epoch 0, task 0.
    pub const ZERO: Position = Position { epoch: 0, task: 0 };

    /// Packs into the 64-bit representation (epoch in the high bits so the
    /// packed integers order the same way the positions do).
    pub fn pack(self) -> u64 {
        ((self.epoch as u64) << 32) | self.task as u64
    }

    /// Inverse of [`Position::pack`].
    pub fn unpack(word: u64) -> Self {
        Position {
            epoch: (word >> 32) as u32,
            task: word as u32,
        }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{},{}>", self.epoch, self.task)
    }
}

/// Shared table of every worker's current [`Position`] plus its global task
/// index (used for speculative-range gating).
#[derive(Debug)]
pub struct PositionBoard {
    positions: Box<[CachePadded<AtomicU64>]>,
    global_tasks: Box<[CachePadded<AtomicU64>]>,
}

impl PositionBoard {
    /// Creates a board for `num_workers` workers, all at [`Position::ZERO`].
    pub fn new(num_workers: usize) -> Self {
        let mk = || {
            (0..num_workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        };
        Self {
            positions: mk(),
            global_tasks: mk(),
        }
    }

    /// Number of tracked workers.
    pub fn num_workers(&self) -> usize {
        self.positions.len()
    }

    /// Publishes worker `tid`'s new position and frontier together.
    pub fn publish(&self, tid: usize, pos: Position, global_task: u64) {
        self.set_frontier(tid, global_task);
        self.set_position(tid, pos);
    }

    /// Publishes worker `tid`'s *frontier*: the global index of the smallest
    /// task it has not yet finished. Published **before** the
    /// speculative-range gate, so the globally slowest worker is always
    /// visible to leaders (this is what makes the gate deadlock-free: the
    /// minimum-frontier worker never waits on anyone).
    pub fn set_frontier(&self, tid: usize, global_task: u64) {
        self.global_tasks[tid].store(global_task, Ordering::Release);
    }

    /// Publishes worker `tid`'s position. Published at task start (after the
    /// gate), which is what other tasks' overlap snapshots must observe.
    pub fn set_position(&self, tid: usize, pos: Position) {
        self.positions[tid].store(pos.pack(), Ordering::Release);
    }

    /// Reads worker `tid`'s current position.
    pub fn position(&self, tid: usize) -> Position {
        Position::unpack(self.positions[tid].load(Ordering::Acquire))
    }

    /// Reads worker `tid`'s current global task index.
    pub fn global_task(&self, tid: usize) -> u64 {
        self.global_tasks[tid].load(Ordering::Relaxed)
    }

    /// Snapshot of every worker's position (the `collect_other_threads()` of
    /// Fig. 4.7 — callers ignore their own slot).
    pub fn snapshot(&self) -> Box<[Position]> {
        (0..self.num_workers())
            .map(|tid| self.position(tid))
            .collect()
    }

    /// Minimum frontier over all workers except `exclude`.
    ///
    /// With a single worker there are no others, so `None` is returned and
    /// the caller should not gate.
    pub fn min_other_frontier(&self, exclude: usize) -> Option<u64> {
        (0..self.num_workers())
            .filter(|&t| t != exclude)
            .map(|t| self.global_task(t))
            .min()
    }

    /// Maximum epoch any worker has entered.
    pub fn max_epoch(&self) -> u32 {
        (0..self.num_workers())
            .map(|t| self.position(t).epoch)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for pos in [
            Position::ZERO,
            Position { epoch: 1, task: 2 },
            Position {
                epoch: u32::MAX,
                task: u32::MAX,
            },
        ] {
            assert_eq!(Position::unpack(pos.pack()), pos);
        }
    }

    #[test]
    fn packed_order_matches_lexicographic_order() {
        let a = Position { epoch: 1, task: 9 };
        let b = Position { epoch: 2, task: 0 };
        assert!(a < b);
        assert!(a.pack() < b.pack());
    }

    #[test]
    fn display_matches_thesis_notation() {
        assert_eq!(Position { epoch: 3, task: 1 }.to_string(), "<3,1>");
    }

    #[test]
    fn board_publishes_and_snapshots() {
        let board = PositionBoard::new(3);
        board.publish(1, Position { epoch: 2, task: 5 }, 17);
        let snap = board.snapshot();
        assert_eq!(snap[0], Position::ZERO);
        assert_eq!(snap[1], Position { epoch: 2, task: 5 });
        assert_eq!(board.global_task(1), 17);
        assert_eq!(board.max_epoch(), 2);
    }

    #[test]
    fn min_other_frontier_excludes_caller() {
        let board = PositionBoard::new(3);
        board.publish(0, Position { epoch: 9, task: 0 }, 100);
        board.publish(1, Position { epoch: 1, task: 0 }, 10);
        board.publish(2, Position { epoch: 0, task: 3 }, 3);
        assert_eq!(board.min_other_frontier(0), Some(3));
        assert_eq!(board.min_other_frontier(2), Some(10));
    }

    #[test]
    fn single_worker_has_no_others() {
        let board = PositionBoard::new(1);
        assert_eq!(board.min_other_frontier(0), None);
    }
}
