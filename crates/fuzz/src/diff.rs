//! Executes one case through every applicable engine path and diffs the
//! observable outcomes against the sequential oracle.
//!
//! Outcome contract (the acceptance property of the differential fuzzer):
//!
//! * A path that returns `Ok` — degraded or not — must leave memory
//!   **byte-identical** to the oracle's final image.
//! * A path that returns a typed error is acceptable **only when the case
//!   injects faults** (a fault-free typed error is a divergence).
//! * Panics that escape an engine, hangs (bounded by each engine's
//!   watchdog plus the harness timeout in CI), and oracle rejections of a
//!   generated program are divergences.
//!
//! Verdict streams of the *threaded* engines are timing-dependent (whether
//! a cross-epoch conflict materializes depends on actual overlap), so
//! verdict equality is asserted where it is deterministic: the discrete
//! simulators, replaying the region's recorded access trace, must produce
//! identical misspeculation counts and schedules with the epoch-summary
//! and schedule-memo fast paths on and off.
//!
//! Static check elision rides the same split. The threaded `spec-elide`
//! path re-runs the plan with elision forced on and asserts the memory
//! contract only; the simulated `sim-elide` path asserts full verdict-
//! stream equality (and a monotone reduction in check requests) on
//! fault-free cases — under faults, checker-targeted faults ride on
//! admissions elision removes, so which faults fire is legitimately
//! elision-dependent.
//!
//! The sharded checker rides the same split. The threaded `spec-shards`
//! path asserts the memory contract only (sharding can drop Bloom false
//! conflicts whose spans never share a shard — sound, and timing-dependent
//! anyway). The simulated `sim-shards` path asserts full verdict-stream
//! equality, but under a frictionless checker and no fault injection: with
//! zero per-request service cost a checker clock never bounds a checkpoint
//! rendezvous and recovery restarts are uniform time shifts, so the shard
//! count is provably verdict-invariant. With real checker costs sharding
//! legitimately changes overlap timing — that being the point of it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossinvoc_domore::policy::RoundRobin;
use crossinvoc_domore::runtime::DomoreConfig;
use crossinvoc_pir::{DomorePlan, Memory, SpecCrossPlan};
use crossinvoc_runtime::metrics::MetricsSummary;
use crossinvoc_runtime::pool::WorkerPool;
use crossinvoc_runtime::signature::{AccessKind, BloomSignature, RangeSignature};
use crossinvoc_runtime::telemetry::{FlightRecorder, RegionState, RegionTelemetry, ServerRegistry};
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::engine::{DegradePolicy, SpecConfig};

use crate::gen::{FuzzCase, SigKind};
use crate::oracle::run_oracle;

/// Watchdog handed to every threaded engine run. Far above any legitimate
/// case runtime; far below the harness timeout in CI.
const WATCHDOG: Duration = Duration::from_secs(10);

/// One observed disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which execution path disagreed.
    pub path: &'static str,
    /// What was observed.
    pub detail: String,
}

/// Everything `run_case` learned about one case.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Paths that executed (for coverage accounting).
    pub paths_run: Vec<&'static str>,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
    /// Whether `SpecCrossPlan::build` accepted the region.
    pub spec_applicable: bool,
    /// Whether `DomorePlan::build` accepted the nest.
    pub domore_applicable: bool,
}

impl DiffReport {
    fn diverge(&mut self, path: &'static str, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(Divergence { path, detail });
        }
    }
}

/// Replays a recorded region through the simulators.
struct RecordedWorkload {
    epochs: Vec<Vec<Vec<(usize, AccessKind)>>>,
    space: usize,
    /// Per-epoch `pir::elide` verdicts (epoch → region loop, modulo the
    /// loop count — the same mapping the threaded adapter uses).
    proven: Vec<bool>,
}

impl RecordedWorkload {
    fn new(epochs: Vec<Vec<Vec<(usize, AccessKind)>>>) -> Self {
        let space = epochs
            .iter()
            .flatten()
            .flatten()
            .map(|&(a, _)| a + 1)
            .max()
            .unwrap_or(1);
        let proven = vec![false; epochs.len()];
        Self {
            epochs,
            space,
            proven,
        }
    }
}

impl SimWorkload for RecordedWorkload {
    fn num_invocations(&self) -> usize {
        self.epochs.len()
    }

    fn num_iterations(&self, inv: usize) -> usize {
        self.epochs[inv].len()
    }

    fn iteration_cost(&self, _inv: usize, _iter: usize) -> u64 {
        90
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        out.extend(self.epochs[inv][iter].iter().copied());
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.space)
    }

    fn invocation_is_proven(&self, inv: usize) -> bool {
        self.proven.get(inv).copied().unwrap_or(false)
    }
}

/// Runs every applicable path for `case` and returns the classified
/// outcome. Never panics; engine panics are caught and reported.
pub fn run_case(case: &FuzzCase) -> DiffReport {
    let mut report = DiffReport::default();
    let faults_empty = case.faults.is_empty();

    // Path 0: the independent oracle. A rejection here is a generator (or
    // corpus-entry) bug and is reported as a divergence on its own path.
    report.paths_run.push("oracle");
    let expected = match run_oracle(&case.program) {
        Ok(mem) => mem,
        Err(e) => {
            report.diverge("oracle", format!("oracle rejected the program: {e}"));
            return report;
        }
    };

    // Path 1: the production sequential interpreter vs the oracle.
    report.paths_run.push("seq");
    match exec_caught(
        "seq",
        |mem| {
            crossinvoc_pir::Interp::new(&case.program).run(mem);
            Ok::<(), String>(())
        },
        case,
    ) {
        Outcome::Ok(mem) => {
            if mem != expected {
                report.diverge("seq", first_mismatch(&expected, &mem));
            }
        }
        Outcome::Err(e) => report.diverge("seq", format!("interpreter error: {e}")),
        Outcome::Panicked(p) => report.diverge("seq", format!("interpreter panicked: {p}")),
    }
    if report.divergence.is_some() {
        return report;
    }

    let Some(outer) = case.outer() else {
        return report; // no region: sequential paths are the whole story
    };

    // SPECCROSS paths.
    if let Ok(plan) = SpecCrossPlan::build(&case.program, outer) {
        report.spec_applicable = true;
        let distance = if case.gate_distance {
            let mut scratch = Memory::zeroed(&case.program);
            plan.profile(&mut scratch, 4).min_distance
        } else {
            None
        };
        let base = || {
            let mut c = SpecConfig::with_workers(case.workers)
                .checkpoint_every(case.checkpoint_every)
                .spec_distance(distance)
                .fault_plan(case.faults.clone())
                .elide(case.elide)
                .watchdog(WATCHDOG);
            if case.degrade {
                c = c.degrade(DegradePolicy::default());
            }
            c
        };

        for (path, summaries) in [("spec+summaries", true), ("spec-summaries", false)] {
            report.paths_run.push(path);
            let config = base().epoch_summaries(summaries);
            let out = match case.signature {
                SigKind::Range => exec_caught(
                    path,
                    |mem| plan.execute_sig::<RangeSignature>(mem, config).map(|_| ()),
                    case,
                ),
                SigKind::Bloom => exec_caught(
                    path,
                    |mem| plan.execute_sig::<BloomSignature>(mem, config).map(|_| ()),
                    case,
                ),
            };
            check_outcome(&mut report, path, out, &expected, faults_empty);
        }

        report.paths_run.push("barrier");
        let out = exec_caught(
            "barrier",
            |mem| plan.execute_with_barriers(mem, base()).map(|_| ()),
            case,
        );
        check_outcome(&mut report, "barrier", out, &expected, faults_empty);

        // Static-elision lane, threaded: the same plan with elision forced
        // on. Loops `pir::elide` proved conflict-free skip signature
        // generation and checker admission entirely; elision may only
        // remove work, so the memory contract must hold unchanged (under
        // faults the standard outcome-class policy binds — checker-
        // targeted faults ride on admissions elision removes, so which
        // faults fire is legitimately elision-dependent).
        report.paths_run.push("spec-elide");
        let config = base().epoch_summaries(true).elide(true);
        let out = match case.signature {
            SigKind::Range => exec_caught(
                "spec-elide",
                |mem| plan.execute_sig::<RangeSignature>(mem, config).map(|_| ()),
                case,
            ),
            SigKind::Bloom => exec_caught(
                "spec-elide",
                |mem| plan.execute_sig::<BloomSignature>(mem, config).map(|_| ()),
                case,
            ),
        };
        check_outcome(&mut report, "spec-elide", out, &expected, faults_empty);

        // Sharded checker, threaded: admission must stay sound for every
        // shard count, so the final image must still match the oracle
        // byte-for-byte (straddling tasks are admitted only when every
        // touched shard admits them).
        if case.checker_shards > 1 {
            report.paths_run.push("spec-shards");
            let config = base()
                .epoch_summaries(true)
                .checker_shards(case.checker_shards);
            let out = match case.signature {
                SigKind::Range => exec_caught(
                    "spec-shards",
                    |mem| plan.execute_sig::<RangeSignature>(mem, config).map(|_| ()),
                    case,
                ),
                SigKind::Bloom => exec_caught(
                    "spec-shards",
                    |mem| plan.execute_sig::<BloomSignature>(mem, config).map(|_| ()),
                    case,
                ),
            };
            check_outcome(&mut report, "spec-shards", out, &expected, faults_empty);
        }

        // Deterministic verdict streams: replay the recorded region through
        // the simulators with each fast path on and off.
        report.paths_run.push("sim");
        let mut scratch = Memory::zeroed(&case.program);
        let mut recorded = RecordedWorkload::new(plan.record_region(&mut scratch));
        let num_loops = plan.elision().loops.len();
        recorded.proven = (0..recorded.epochs.len())
            .map(|e| num_loops > 0 && plan.elision().loop_is_proven(e % num_loops))
            .collect();
        let cost = CostModel::default();
        let params = || {
            SpecSimParams::with_threads(case.workers)
                .checkpoint_every(case.checkpoint_every)
                .spec_distance(distance)
                .fault_plan(case.faults.clone())
        };
        let sim_on = speccross(&recorded, &params().epoch_summaries(true), &cost);
        let sim_off = speccross(&recorded, &params().epoch_summaries(false), &cost);
        if sim_on.stats.misspeculations != sim_off.stats.misspeculations
            || sim_on.stats.tasks != sim_off.stats.tasks
            || sim_on.degraded != sim_off.degraded
        {
            report.diverge(
                "sim",
                format!(
                    "epoch summaries changed the sim verdict stream: \
                     on = {{misspec: {}, tasks: {}, degraded: {}}}, \
                     off = {{misspec: {}, tasks: {}, degraded: {}}}",
                    sim_on.stats.misspeculations,
                    sim_on.stats.tasks,
                    sim_on.degraded,
                    sim_off.stats.misspeculations,
                    sim_off.stats.tasks,
                    sim_off.degraded,
                ),
            );
        }
        // Static elision, simulated: on the deterministic replay elision
        // must be verdict-invariant — a proven epoch can never conflict
        // with a compared task, so skipping its checks removes work only
        // (check requests may shrink, never grow). Faulted cases are
        // exempt for the same reason as the threaded lane: checker-
        // targeted faults ride on admissions elision removes.
        if faults_empty {
            report.paths_run.push("sim-elide");
            let sim_elide = speccross(
                &recorded,
                &params().epoch_summaries(true).elide(true),
                &cost,
            );
            if sim_elide.stats.misspeculations != sim_on.stats.misspeculations
                || sim_elide.stats.tasks != sim_on.stats.tasks
                || sim_elide.degraded != sim_on.degraded
                || sim_elide.stats.check_requests > sim_on.stats.check_requests
            {
                report.diverge(
                    "sim-elide",
                    format!(
                        "static elision changed the sim verdict stream: \
                         elide = {{misspec: {}, tasks: {}, checks: {}, elided: {}, degraded: {}}}, \
                         base = {{misspec: {}, tasks: {}, checks: {}, degraded: {}}}",
                        sim_elide.stats.misspeculations,
                        sim_elide.stats.tasks,
                        sim_elide.stats.check_requests,
                        sim_elide.stats.elided_admits,
                        sim_elide.degraded,
                        sim_on.stats.misspeculations,
                        sim_on.stats.tasks,
                        sim_on.stats.check_requests,
                        sim_on.degraded,
                    ),
                );
            }
        }

        // Sharded checker, simulated: verdict-stream equality under a
        // frictionless checker and no faults (see the module doc for why
        // only that comparison is exact). Fault stalls land on one shard's
        // clock but accumulate on a single checker's, so faulted timing is
        // shard-dependent by design and is left to the threaded path.
        if case.checker_shards > 1 {
            report.paths_run.push("sim-shards");
            let frictionless = CostModel {
                check_request_ns: 0,
                check_compare_ns: 0,
                ..CostModel::default()
            };
            let shard_params = || {
                SpecSimParams::with_threads(case.workers)
                    .checkpoint_every(case.checkpoint_every)
                    .spec_distance(distance)
                    .epoch_summaries(true)
            };
            let sharded = speccross(
                &recorded,
                &shard_params().checker_shards(case.checker_shards),
                &frictionless,
            );
            let unsharded = speccross(&recorded, &shard_params(), &frictionless);
            if sharded.stats.misspeculations != unsharded.stats.misspeculations
                || sharded.stats.tasks != unsharded.stats.tasks
                || sharded.stats.check_requests != unsharded.stats.check_requests
                || sharded.degraded != unsharded.degraded
            {
                report.diverge(
                    "sim-shards",
                    format!(
                        "{} checker shards changed the frictionless sim verdict stream: \
                         sharded = {{misspec: {}, tasks: {}, checks: {}, degraded: {}}}, \
                         unsharded = {{misspec: {}, tasks: {}, checks: {}, degraded: {}}}",
                        case.checker_shards,
                        sharded.stats.misspeculations,
                        sharded.stats.tasks,
                        sharded.stats.check_requests,
                        sharded.degraded,
                        unsharded.stats.misspeculations,
                        unsharded.stats.tasks,
                        unsharded.stats.check_requests,
                        unsharded.degraded,
                    ),
                );
            }
        }

        let memo_on =
            domore_configured(&recorded, case.workers, &mut RoundRobin, &cost, None, true);
        let memo_off =
            domore_configured(&recorded, case.workers, &mut RoundRobin, &cost, None, false);
        if memo_on.stats.tasks != memo_off.stats.tasks
            || memo_on.stats.sync_conditions != memo_off.stats.sync_conditions
        {
            report.diverge(
                "sim",
                format!(
                    "schedule memo changed the sim schedule: \
                     on = {{tasks: {}, syncs: {}}}, off = {{tasks: {}, syncs: {}}}",
                    memo_on.stats.tasks,
                    memo_on.stats.sync_conditions,
                    memo_off.stats.tasks,
                    memo_off.stats.sync_conditions,
                ),
            );
        }
    }

    // DOMORE paths.
    if let Some(inner) = case.inner() {
        if let Ok(plan) = DomorePlan::build(&case.program, outer, inner) {
            report.domore_applicable = true;
            for (path, memo) in [("domore+memo", true), ("domore-memo", false)] {
                report.paths_run.push(path);
                let config = DomoreConfig::with_workers(case.workers)
                    .fault_plan(case.faults.clone())
                    .watchdog(WATCHDOG)
                    .schedule_memo(memo);
                let out = exec_caught(path, |mem| plan.execute_with(mem, config).map(|_| ()), case);
                check_outcome(&mut report, path, out, &expected, faults_empty);
            }
        }
    }

    report
}

/// Runs two generated cases *concurrently* through one shared
/// [`WorkerPool`] — the region-server deployment shape — and diffs each
/// against its own sequential oracle under the standard outcome contract
/// (`Ok` ⇒ byte-identical memory; a typed error only when *that* case
/// injects faults; escaped panics always diverge).
///
/// For a fault-free pair this is exactly the solo contract: the shared
/// pool must be observationally invisible. Under faults the outcome
/// *class* may legitimately differ from a solo replay (rollback windows
/// are timing-dependent), but the contract itself still binds. Each case
/// runs its preferred parallel plan — SPECCROSS when applicable, else
/// DOMORE, else the sequential interpreter (still on its own thread, so
/// the pairing pressure on the pool is preserved for the other case).
///
/// Divergences are attributed to path `regions-a` / `regions-b`.
pub fn run_concurrent_pair(a: &FuzzCase, b: &FuzzCase) -> DiffReport {
    let mut report = DiffReport::default();
    report.paths_run.push("regions-a");
    report.paths_run.push("regions-b");

    let mut oracles = Vec::new();
    for (path, case) in [("regions-a", a), ("regions-b", b)] {
        match run_oracle(&case.program) {
            Ok(mem) => oracles.push(mem),
            Err(e) => {
                report.diverge(path, format!("oracle rejected the program: {e}"));
                return report;
            }
        }
    }

    // Size the pool so both regions' gangs can be in flight at once:
    // spec demand = workers + 1 checker shard, domore demand = workers
    // (the scheduler rides the submitting thread).
    let demand = |case: &FuzzCase| case.workers + 1;
    let pool = WorkerPool::new(demand(a) + demand(b));

    let (out_a, out_b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| run_pair_region(a, &pool, None).0);
        let hb = scope.spawn(|| run_pair_region(b, &pool, None).0);
        (
            ha.join()
                .unwrap_or_else(|p| Outcome::Panicked(panic_message(&*p))),
            hb.join()
                .unwrap_or_else(|p| Outcome::Panicked(panic_message(&*p))),
        )
    });

    check_outcome(
        &mut report,
        "regions-a",
        out_a,
        &oracles[0],
        a.faults.is_empty(),
    );
    check_outcome(
        &mut report,
        "regions-b",
        out_b,
        &oracles[1],
        b.faults.is_empty(),
    );
    report
}

/// Runs one case of a shared-pool pair through its preferred parallel plan
/// (SPECCROSS when applicable, else DOMORE, else the sequential
/// interpreter), optionally with a telemetry cell stamped into the engine
/// config. Returns the outcome plus the engine's final [`MetricsSummary`]
/// when a parallel plan completed (`None` for sequential fallbacks and
/// failed runs), so callers can hold the live registry to the engine's own
/// verdict stream.
///
/// When a cell is attached, the engine drives its lifecycle; the fallback
/// paths here finish it by hand so every registered cell reaches a
/// terminal state (the finish is idempotent — first writer wins).
fn run_pair_region(
    case: &FuzzCase,
    pool: &WorkerPool,
    cell: Option<&Arc<RegionTelemetry>>,
) -> (Outcome, Option<MetricsSummary>) {
    let sequential = |cell: Option<&Arc<RegionTelemetry>>| {
        let out = exec_caught(
            "regions",
            |mem| {
                crossinvoc_pir::Interp::new(&case.program).run(mem);
                Ok::<(), String>(())
            },
            case,
        );
        if let Some(cell) = cell {
            cell.mark_running();
            cell.complete(0, false, None);
        }
        (out, None)
    };
    let Some(outer) = case.outer() else {
        return sequential(cell);
    };
    let metrics = Mutex::new(None);
    let outcome = if let Ok(plan) = SpecCrossPlan::build(&case.program, outer) {
        let mut config = SpecConfig::with_workers(case.workers)
            .checkpoint_every(case.checkpoint_every)
            .fault_plan(case.faults.clone())
            .elide(case.elide)
            .watchdog(WATCHDOG);
        if case.degrade {
            config = config.degrade(DegradePolicy::default());
        }
        if let Some(cell) = cell {
            config = config.telemetry(Arc::clone(cell));
        }
        match case.signature {
            SigKind::Range => exec_caught(
                "regions",
                |mem| {
                    plan.execute_sig_on::<RangeSignature>(mem, config, pool)
                        .map(|r| *metrics.lock().unwrap() = Some(r.metrics))
                },
                case,
            ),
            SigKind::Bloom => exec_caught(
                "regions",
                |mem| {
                    plan.execute_sig_on::<BloomSignature>(mem, config, pool)
                        .map(|r| *metrics.lock().unwrap() = Some(r.metrics))
                },
                case,
            ),
        }
    } else if let Some(plan) = case
        .inner()
        .and_then(|inner| DomorePlan::build(&case.program, outer, inner).ok())
    {
        let mut config = DomoreConfig::with_workers(case.workers)
            .fault_plan(case.faults.clone())
            .watchdog(WATCHDOG);
        if let Some(cell) = cell {
            config = config.telemetry(Arc::clone(cell));
        }
        exec_caught(
            "regions",
            |mem| {
                plan.execute_with_on(mem, config, pool)
                    .map(|r| *metrics.lock().unwrap() = Some(r.metrics))
            },
            case,
        )
    } else {
        return sequential(cell);
    };
    if let Some(cell) = cell {
        // Safety net for a panic that escaped before the engine finished
        // the cell; a no-op for normally-finished cells.
        match &outcome {
            Outcome::Ok(_) => cell.complete(0, false, None),
            _ => cell.fail(None),
        }
    }
    (outcome, metrics.into_inner().unwrap())
}

/// Runs the shared-pool pair of [`run_concurrent_pair`] twice — telemetry
/// plane detached, then attached (a [`ServerRegistry`] with an armed
/// [`FlightRecorder`] on the same pool shape) — and asserts the plane is
/// observationally invisible:
///
/// * each telemetry-on region still satisfies the standard oracle
///   contract (memory digest, typed-error policy, no escaped panics);
/// * for a fault-free pair the two settings must agree on outcome class
///   and final memory byte-for-byte (verdict *counts* of the threaded
///   engines are timing-dependent — see the module docs — so stream
///   equality is asserted where it is deterministic, next);
/// * within the telemetry-on run, every region's registry snapshot row
///   must carry exactly the [`MetricsSummary`] its engine reported — the
///   registry may not fork, dampen, or re-derive the verdict stream — and
///   every registered cell must reach a terminal state.
///
/// Divergences are attributed to `regions-a-telemetry` /
/// `regions-b-telemetry`.
pub fn run_concurrent_pair_telemetry(a: &FuzzCase, b: &FuzzCase) -> DiffReport {
    let mut report = DiffReport::default();
    report.paths_run.push("regions-a-telemetry");
    report.paths_run.push("regions-b-telemetry");

    let mut oracles = Vec::new();
    for (path, case) in [("regions-a-telemetry", a), ("regions-b-telemetry", b)] {
        match run_oracle(&case.program) {
            Ok(mem) => oracles.push(mem),
            Err(e) => {
                report.diverge(path, format!("oracle rejected the program: {e}"));
                return report;
            }
        }
    }

    let demand = |case: &FuzzCase| case.workers + 1;
    let slots = demand(a) + demand(b);

    // One full pair run per setting; pool and registry are rebuilt so both
    // settings start from identical state.
    let run_setting = |telemetry: bool| {
        let pool = WorkerPool::new(slots);
        let registry = telemetry.then(|| {
            let registry =
                Arc::new(ServerRegistry::new(slots).with_recorder(FlightRecorder::new(128)));
            pool.attach_telemetry(Arc::clone(&registry));
            registry
        });
        let cells: Vec<Option<Arc<RegionTelemetry>>> = [a, b]
            .into_iter()
            .enumerate()
            .map(|(i, case)| {
                registry
                    .as_ref()
                    .map(|r| r.register(i as u64 + 1, "fuzz-pair", demand(case)))
            })
            .collect();
        let (ra, rb) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| run_pair_region(a, &pool, cells[0].as_ref()));
            let hb = scope.spawn(|| run_pair_region(b, &pool, cells[1].as_ref()));
            (
                ha.join()
                    .unwrap_or_else(|p| (Outcome::Panicked(panic_message(&*p)), None)),
                hb.join()
                    .unwrap_or_else(|p| (Outcome::Panicked(panic_message(&*p)), None)),
            )
        });
        (ra, rb, registry)
    };

    let ((off_a, _), (off_b, _), _) = run_setting(false);
    let ((on_a, metrics_a), (on_b, metrics_b), registry) = run_setting(true);

    // Registry-side checks: terminal states and verdict-stream fidelity
    // (snapshot rows must mirror the engines' own reports exactly — the
    // metrics-aliasing guarantee of region-server mode).
    let registry = registry.expect("telemetry setting always builds a registry");
    let snapshot = registry.snapshot();
    for (path, row, metrics) in [
        ("regions-a-telemetry", &snapshot.regions[0], &metrics_a),
        ("regions-b-telemetry", &snapshot.regions[1], &metrics_b),
    ] {
        if !matches!(row.state, RegionState::Done | RegionState::Faulted) {
            report.diverge(
                path,
                format!("region cell never finished: state {:?}", row.state),
            );
        }
        if let Some(metrics) = metrics {
            if row.metrics != *metrics {
                report.diverge(
                    path,
                    format!(
                        "registry forked the verdict stream: snapshot {:?} != report {:?}",
                        row.metrics, metrics
                    ),
                );
            }
        }
    }

    // Cross-setting checks, deterministic only for a fault-free pair (see
    // run_concurrent_pair on why outcome classes may shift under faults).
    if a.faults.is_empty() && b.faults.is_empty() {
        for (path, off, on) in [
            ("regions-a-telemetry", &off_a, &on_a),
            ("regions-b-telemetry", &off_b, &on_b),
        ] {
            match (off, on) {
                (Outcome::Ok(off_mem), Outcome::Ok(on_mem)) if off_mem != on_mem => {
                    report.diverge(
                        path,
                        format!(
                            "telemetry changed the region digest: {}",
                            first_mismatch(off_mem, on_mem)
                        ),
                    );
                }
                (Outcome::Ok(_), Outcome::Ok(_)) => {}
                (Outcome::Ok(_), _) | (_, Outcome::Ok(_)) => {
                    report.diverge(
                        path,
                        "telemetry changed the outcome class of a fault-free region".to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    check_outcome(
        &mut report,
        "regions-a-telemetry",
        on_a,
        &oracles[0],
        a.faults.is_empty(),
    );
    check_outcome(
        &mut report,
        "regions-b-telemetry",
        on_b,
        &oracles[1],
        b.faults.is_empty(),
    );
    report
}

/// What one engine execution produced.
enum Outcome {
    /// Completed; final memory image.
    Ok(Vec<i64>),
    /// Typed engine error.
    Err(String),
    /// A panic escaped the engine.
    Panicked(String),
}

fn exec_caught<E: std::fmt::Debug>(
    _path: &'static str,
    run: impl FnOnce(&mut Memory) -> Result<(), E>,
    case: &FuzzCase,
) -> Outcome {
    let mut mem = Memory::zeroed(&case.program);
    match catch_unwind(AssertUnwindSafe(|| run(&mut mem))) {
        Ok(Ok(())) => Outcome::Ok(mem.snapshot()),
        Ok(Err(e)) => Outcome::Err(format!("{e:?}")),
        Err(p) => Outcome::Panicked(panic_message(&p)),
    }
}

fn check_outcome(
    report: &mut DiffReport,
    path: &'static str,
    out: Outcome,
    expected: &[i64],
    faults_empty: bool,
) {
    match out {
        Outcome::Ok(mem) => {
            if mem != expected {
                report.diverge(path, first_mismatch(expected, &mem));
            }
        }
        Outcome::Err(e) => {
            if faults_empty {
                report.diverge(path, format!("typed error without injected faults: {e}"));
            }
        }
        Outcome::Panicked(p) => {
            report.diverge(path, format!("panic escaped the engine: {p}"));
        }
    }
}

fn first_mismatch(expected: &[i64], got: &[i64]) -> String {
    if expected.len() != got.len() {
        return format!(
            "memory size mismatch: expected {} cells, got {}",
            expected.len(),
            got.len()
        );
    }
    let diffs: Vec<usize> = (0..expected.len())
        .filter(|&i| expected[i] != got[i])
        .collect();
    let first = diffs.first().copied().unwrap_or(0);
    format!(
        "memory diverges at {} of {} cells, first at addr {first}: expected {}, got {}",
        diffs.len(),
        expected.len(),
        expected.get(first).copied().unwrap_or(0),
        got.get(first).copied().unwrap_or(0),
    )
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    #[test]
    fn fault_free_seeds_run_clean() {
        let params = GenParams {
            fault_percent: 0,
            ..GenParams::default()
        };
        for seed in 0..25 {
            let case = generate(seed, &params);
            let r = run_case(&case);
            assert!(
                r.divergence.is_none(),
                "seed {seed} ({}): {:?}",
                case.note,
                r.divergence
            );
        }
    }

    #[test]
    fn fault_free_pairs_share_a_pool_cleanly() {
        let params = GenParams {
            fault_percent: 0,
            ..GenParams::default()
        };
        for seed in (0..16).step_by(2) {
            let a = generate(seed, &params);
            let b = generate(seed + 1, &params);
            let r = run_concurrent_pair(&a, &b);
            assert!(
                r.divergence.is_none(),
                "pair ({seed}, {}) [{} | {}]: {:?}",
                seed + 1,
                a.note,
                b.note,
                r.divergence
            );
        }
    }

    #[test]
    fn telemetry_is_invisible_on_fault_free_pairs() {
        let params = GenParams {
            fault_percent: 0,
            ..GenParams::default()
        };
        for seed in (0..12).step_by(2) {
            let a = generate(seed, &params);
            let b = generate(seed + 1, &params);
            let r = run_concurrent_pair_telemetry(&a, &b);
            assert!(
                r.divergence.is_none(),
                "pair ({seed}, {}) [{} | {}]: {:?}",
                seed + 1,
                a.note,
                b.note,
                r.divergence
            );
        }
    }

    #[test]
    fn telemetry_pairs_hold_the_contract_under_faults() {
        let params = GenParams {
            fault_percent: 100,
            ..GenParams::default()
        };
        for seed in (0..8).step_by(2) {
            let a = generate(seed, &params);
            let b = generate(seed + 1, &params);
            let r = run_concurrent_pair_telemetry(&a, &b);
            assert!(
                r.divergence.is_none(),
                "pair ({seed}, {}): {:?}",
                seed + 1,
                r.divergence
            );
        }
    }

    #[test]
    fn faulty_pairs_terminate_with_clean_outcomes() {
        let params = GenParams {
            fault_percent: 100,
            ..GenParams::default()
        };
        for seed in (0..10).step_by(2) {
            let a = generate(seed, &params);
            let b = generate(seed + 1, &params);
            let r = run_concurrent_pair(&a, &b);
            assert!(
                r.divergence.is_none(),
                "pair ({seed}, {}): {:?}",
                seed + 1,
                r.divergence
            );
        }
    }

    #[test]
    fn faulty_seeds_terminate_with_clean_outcomes() {
        let params = GenParams {
            fault_percent: 100,
            ..GenParams::default()
        };
        for seed in 0..15 {
            let case = generate(seed, &params);
            let r = run_case(&case);
            assert!(
                r.divergence.is_none(),
                "seed {seed} ({}): {:?}",
                case.note,
                r.divergence
            );
        }
    }
}
