//! Multi-Threaded Code Generation (§3.3.2, Figs. 3.6(d)/(e) and 3.7).
//!
//! Given a validated [`crate::transform::DomorePlan`], MTCG emits the two
//! generated functions of the thesis: the *scheduler* (outer-loop traversal,
//! sequential prologue, `computeAddr`, `schedule`, synchronization-condition
//! and live-in `produce`s, `END_TOKEN` broadcast) and the *worker* (consume
//! loop, synchronization waits, the inner-loop body, `latestFinished`
//! publication). On this structured IR the thesis' block-creation and
//! branch-repair rules (its steps 2–3) are identities, so the emission is
//! the remaining substance: statement placement, the value-communication
//! rule (step 4: live-ins produced at the inner-loop header) and the
//! termination protocol (step 5).
//!
//! The output is a structural program description (plus a Fig. 3.7-style
//! renderer); execution of the plan is handled by
//! [`crate::transform::DomorePlan::execute`], which realizes exactly this
//! structure over the threaded runtime.

use std::collections::HashSet;
use std::fmt;

use crate::ir::{Program, Stmt, StmtId, VarId};
use crate::transform::DomorePlan;

/// One step of the generated scheduler function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerStep {
    /// Execute a sequential outer-loop statement (prologue).
    Prologue(StmtId),
    /// Evaluate the inner loop's bounds and iterate.
    EnterInnerLoop,
    /// Re-execute one `computeAddr` slice statement.
    ComputeAddr(StmtId),
    /// Run the scheduling logic: shadow lookup, assignment, and the
    /// synchronization-condition `produce`s of Alg. 1.
    ScheduleIteration,
    /// `produce` one live-in scalar to the assigned worker (MTCG step 4).
    ProduceLiveIn(VarId),
    /// `produce` the iteration token (`NO_SYNC`, combined number).
    ProduceIteration,
    /// Broadcast `END_TOKEN` to every worker (MTCG step 5).
    BroadcastEnd,
}

/// One step of the generated worker function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerStep {
    /// `consume` the next token; exit on `END_TOKEN` (MTCG step 5).
    ConsumeToken,
    /// Wait on `latestFinished` for a synchronization condition (Alg. 2).
    AwaitConditions,
    /// `consume` one live-in scalar (MTCG step 4).
    ConsumeLiveIn(VarId),
    /// Execute one inner-loop body statement.
    Body(StmtId),
    /// Publish completion in `latestFinished`.
    PublishFinished,
}

/// The two generated functions.
#[derive(Debug, Clone)]
pub struct MtcgOutput {
    /// Scheduler-function steps, in emission order.
    pub scheduler: Vec<SchedulerStep>,
    /// Worker-function steps (the per-token loop body), in emission order.
    pub worker: Vec<WorkerStep>,
    /// Live-in scalars communicated scheduler → worker per iteration.
    pub live_ins: Vec<VarId>,
}

impl MtcgOutput {
    /// Emits the scheduler and worker functions for `plan`.
    pub fn emit(program: &Program, plan: &DomorePlan<'_>) -> MtcgOutput {
        let inner_body = plan.inner_body();
        let body_stmts = program.subtrees(inner_body);
        // Live-ins: variables the worker body *uses* but does not define,
        // excluding the inner induction variable (bound by the dispatch
        // token itself).
        let mut defined: HashSet<VarId> = HashSet::new();
        defined.insert(plan.inner_iv());
        for &s in &body_stmts {
            match program.stmt(s) {
                Stmt::Assign { var, .. } | Stmt::Load { var, .. } => {
                    defined.insert(*var);
                }
                Stmt::For { var, .. } => {
                    defined.insert(*var);
                }
                _ => {}
            }
        }
        let mut live_ins: Vec<VarId> = Vec::new();
        let mut seen = HashSet::new();
        for &s in &body_stmts {
            let mut uses = Vec::new();
            stmt_header_uses(program.stmt(s), &mut uses);
            for v in uses {
                if !defined.contains(&v) && seen.insert(v) {
                    live_ins.push(v);
                }
            }
        }

        let mut scheduler = Vec::new();
        for &s in plan.prologue_stmts() {
            scheduler.push(SchedulerStep::Prologue(s));
        }
        scheduler.push(SchedulerStep::EnterInnerLoop);
        for &s in &plan.slice().stmts {
            scheduler.push(SchedulerStep::ComputeAddr(s));
        }
        scheduler.push(SchedulerStep::ScheduleIteration);
        for &v in &live_ins {
            scheduler.push(SchedulerStep::ProduceLiveIn(v));
        }
        scheduler.push(SchedulerStep::ProduceIteration);
        scheduler.push(SchedulerStep::BroadcastEnd);

        let mut worker = vec![WorkerStep::ConsumeToken, WorkerStep::AwaitConditions];
        for &v in &live_ins {
            worker.push(WorkerStep::ConsumeLiveIn(v));
        }
        for &s in inner_body {
            worker.push(WorkerStep::Body(s));
        }
        worker.push(WorkerStep::PublishFinished);

        MtcgOutput {
            scheduler,
            worker,
            live_ins,
        }
    }

    /// MTCG's pipeline property: every cross-thread communication flows
    /// scheduler → worker (produces strictly precede the matching consumes
    /// in the emitted protocol order).
    pub fn is_pipelined(&self) -> bool {
        // Scheduler side: all produces precede BroadcastEnd, and the
        // iteration token is produced after its live-ins.
        let iter_pos = self
            .scheduler
            .iter()
            .position(|s| *s == SchedulerStep::ProduceIteration);
        let livein_ok = self.scheduler.iter().enumerate().all(|(k, s)| match s {
            SchedulerStep::ProduceLiveIn(_) => Some(k) < iter_pos,
            _ => true,
        });
        // Worker side: token consumption first, body after live-ins,
        // publication last.
        let body_first = self
            .worker
            .iter()
            .position(|s| matches!(s, WorkerStep::Body(_)));
        let livein_last = self
            .worker
            .iter()
            .rposition(|s| matches!(s, WorkerStep::ConsumeLiveIn(_)));
        let order_ok = match (body_first, livein_last) {
            (Some(b), Some(l)) => l < b,
            _ => true,
        };
        livein_ok
            && order_ok
            && self.worker.first() == Some(&WorkerStep::ConsumeToken)
            && self.worker.last() == Some(&WorkerStep::PublishFinished)
            && self.scheduler.last() == Some(&SchedulerStep::BroadcastEnd)
    }
}

fn stmt_header_uses(stmt: &Stmt, out: &mut Vec<VarId>) {
    match stmt {
        Stmt::Assign { expr, .. } => expr.vars(out),
        Stmt::Load { index, .. } => index.vars(out),
        Stmt::Store { index, value, .. } => {
            index.vars(out);
            value.vars(out);
        }
        Stmt::Call { args, .. } => {
            for a in args {
                a.vars(out);
            }
        }
        Stmt::If { cond, .. } => cond.vars(out),
        Stmt::For { from, to, .. } => {
            from.vars(out);
            to.vars(out);
        }
    }
}

/// Fig. 3.7-style rendering of the generated pair.
pub struct MtcgDisplay<'a> {
    /// The program the statement ids refer to.
    pub program: &'a Program,
    /// The emitted functions.
    pub output: &'a MtcgOutput,
}

impl fmt::Debug for MtcgDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MtcgDisplay({} steps)", self.output.scheduler.len())
    }
}

impl fmt::Display for MtcgDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let var = |v: &VarId| self.program.vars()[v.0].clone();
        writeln!(f, "void scheduler() {{")?;
        for step in &self.output.scheduler {
            match step {
                SchedulerStep::Prologue(s) => writeln!(f, "  /* seq */ stmt#{}", s.0)?,
                SchedulerStep::EnterInnerLoop => writeln!(f, "  for each inner iteration {{")?,
                SchedulerStep::ComputeAddr(s) => writeln!(f, "    computeAddr: stmt#{}", s.0)?,
                SchedulerStep::ScheduleIteration => writeln!(
                    f,
                    "    tid = schedule(iternum, addr_set); schedulerSync(...)"
                )?,
                SchedulerStep::ProduceLiveIn(v) => writeln!(f, "    produce({})", var(v))?,
                SchedulerStep::ProduceIteration => {
                    writeln!(f, "    produce(NO_SYNC, iternum)")?;
                    writeln!(f, "  }}")?
                }
                SchedulerStep::BroadcastEnd => writeln!(f, "  produce_to_all(END_TOKEN)")?,
            }
        }
        writeln!(f, "}}")?;
        writeln!(f, "void worker() {{ while (1) {{")?;
        for step in &self.output.worker {
            match step {
                WorkerStep::ConsumeToken => {
                    writeln!(f, "  tok = consume(); if (tok == END_TOKEN) return;")?
                }
                WorkerStep::AwaitConditions => {
                    writeln!(f, "  while (latestFinished[depTid] < depIterNum) wait();")?
                }
                WorkerStep::ConsumeLiveIn(v) => writeln!(f, "  {} = consume();", var(v))?,
                WorkerStep::Body(s) => writeln!(f, "  doWork: stmt#{}", s.0)?,
                WorkerStep::PublishFinished => writeln!(f, "  latestFinished[tid] = iternum;")?,
            }
        }
        writeln!(f, "}} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, ProgramBuilder};
    use crate::transform::DomorePlan;

    /// A CG-like nest whose worker body consumes a prologue-computed scalar.
    fn nest_with_live_in() -> (Program, StmtId, StmtId, VarId) {
        let mut b = ProgramBuilder::new();
        let scales = b.array("scales", 8);
        let c = b.array("C", 32);
        let i = b.var("i");
        let j = b.var("j");
        let scale = b.var("scale");
        let t = b.var("t");
        let mut inner = StmtId(0);
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.load(scale, scales, Expr::Var(i));
            inner = b.for_loop(j, Expr::Const(0), Expr::Const(32), |b| {
                b.load(t, c, Expr::Var(j));
                b.store(c, Expr::Var(j), Expr::add(Expr::Var(t), Expr::Var(scale)));
            });
        });
        (b.finish(), outer, inner, scale)
    }

    #[test]
    fn emission_identifies_live_ins() {
        let (p, outer, inner, scale) = nest_with_live_in();
        let plan = DomorePlan::build(&p, outer, inner).unwrap();
        let out = MtcgOutput::emit(&p, &plan);
        assert_eq!(out.live_ins, vec![scale], "scale flows scheduler → worker");
        assert!(out.scheduler.contains(&SchedulerStep::ProduceLiveIn(scale)));
        assert!(out.worker.contains(&WorkerStep::ConsumeLiveIn(scale)));
    }

    #[test]
    fn emission_is_pipelined() {
        let (p, outer, inner, _) = nest_with_live_in();
        let plan = DomorePlan::build(&p, outer, inner).unwrap();
        let out = MtcgOutput::emit(&p, &plan);
        assert!(out.is_pipelined());
    }

    #[test]
    fn worker_contains_exactly_the_inner_body() {
        let (p, outer, inner, _) = nest_with_live_in();
        let plan = DomorePlan::build(&p, outer, inner).unwrap();
        let out = MtcgOutput::emit(&p, &plan);
        let bodies: Vec<StmtId> = out
            .worker
            .iter()
            .filter_map(|s| match s {
                WorkerStep::Body(id) => Some(*id),
                _ => None,
            })
            .collect();
        let Stmt::For { body, .. } = p.stmt(inner) else {
            unreachable!()
        };
        assert_eq!(&bodies, body);
    }

    #[test]
    fn scheduler_ends_with_the_end_token_broadcast() {
        let (p, outer, inner, _) = nest_with_live_in();
        let plan = DomorePlan::build(&p, outer, inner).unwrap();
        let out = MtcgOutput::emit(&p, &plan);
        assert_eq!(out.scheduler.last(), Some(&SchedulerStep::BroadcastEnd));
        assert!(out
            .scheduler
            .iter()
            .any(|s| matches!(s, SchedulerStep::Prologue(_))));
    }

    #[test]
    fn display_renders_figure_3_7_shape() {
        let (p, outer, inner, _) = nest_with_live_in();
        let plan = DomorePlan::build(&p, outer, inner).unwrap();
        let out = MtcgOutput::emit(&p, &plan);
        let text = MtcgDisplay {
            program: &p,
            output: &out,
        }
        .to_string();
        for needle in [
            "void scheduler()",
            "schedule(iternum, addr_set)",
            "produce(NO_SYNC, iternum)",
            "produce_to_all(END_TOKEN)",
            "void worker()",
            "latestFinished[tid] = iternum;",
            "scale = consume();",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
