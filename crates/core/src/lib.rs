//! crossinvoc — automatic cross-invocation parallelization using runtime
//! information.
//!
//! This is the facade crate of the reproduction of Huang's *Automatically
//! Exploiting Cross-Invocation Parallelism Using Runtime Information*
//! (Princeton, 2013; DOMORE appeared at CGO 2013). It re-exports the member
//! crates and adds the piece that makes the system *automatic*: the
//! [`driver`], which takes a loop nest in the PIR intermediate
//! representation, profiles it, applies the decision flow of Fig. 1.5 /
//! §1.2 — frequent cross-invocation conflicts → DOMORE, rare conflicts →
//! SPECCROSS, otherwise barriers or sequential — and executes the chosen
//! plan on the corresponding runtime.
//!
//! # Crate map
//!
//! | Re-export | Crate | Role |
//! |-----------|-------|------|
//! | [`runtime`] | `crossinvoc-runtime` | queues, barriers, shadow memory, signatures |
//! | [`domore`] | `crossinvoc-domore` | non-speculative scheduler/worker engine (Ch. 3) |
//! | [`speccross`] | `crossinvoc-speccross` | speculative barriers + checker + recovery (Ch. 4) |
//! | [`pir`] | `crossinvoc-pir` | mini-IR, PDG, partitioning, slicing, transformations |
//! | [`sim`] | `crossinvoc-sim` | deterministic multicore simulation (figure harness) |
//! | [`workloads`] | `crossinvoc-workloads` | the Table 5.1 benchmark suite |
//!
//! # Quickstart
//!
//! ```
//! use crossinvoc::driver::{AutoParallelizer, Strategy};
//! use crossinvoc::pir::interp::Memory;
//! use crossinvoc::pir::ir::{Expr, ProgramBuilder};
//!
//! // A nest with many invocations and rare cross-invocation conflicts:
//! // the driver picks speculative barriers.
//! let mut b = ProgramBuilder::new();
//! let a = b.array("A", 64);
//! let t = b.var("t");
//! let i = b.var("i");
//! let x = b.var("x");
//! let outer = b.for_loop(t, Expr::Const(0), Expr::Const(10), |b| {
//!     b.for_loop(i, Expr::Const(0), Expr::Const(64), |b| {
//!         b.load(x, a, Expr::Var(i));
//!         b.store(a, Expr::Var(i), Expr::add(Expr::Var(x), Expr::Const(1)));
//!     });
//! });
//! let program = b.finish();
//!
//! let driver = AutoParallelizer::new(2);
//! let decision = driver.plan(&program, outer).unwrap();
//! assert_eq!(decision.strategy(), Strategy::SpecCross);
//!
//! let mut mem = Memory::zeroed(&program);
//! decision.execute(&mut mem).unwrap();
//! let mut expected = Memory::zeroed(&program);
//! decision.execute_sequential(&mut expected);
//! assert_eq!(mem.snapshot(), expected.snapshot());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod driver;
pub mod server;

pub use crossinvoc_domore as domore;
pub use crossinvoc_pir as pir;
pub use crossinvoc_runtime as runtime;
pub use crossinvoc_sim as sim;
pub use crossinvoc_speccross as speccross;
pub use crossinvoc_workloads as workloads;

pub use driver::{AutoError, AutoParallelizer, Decision, Strategy};
pub use server::{RegionError, RegionHandle, RegionReport, RegionServer};
