//! Cross-invocation schedule memoization.
//!
//! DOMORE's scheduler redoes identical work on every invocation of a
//! steady-state loop nest: stencil codes (jacobi, fdtd, symm) touch the
//! same addresses with the same per-iteration pattern on every outer
//! iteration, so the shadow walk of [`SchedulerLogic::schedule_rw`]
//! recomputes the same worker assignments and the same synchronization
//! conditions — merely shifted by one invocation's worth of combined
//! iteration numbers. [`ScheduleMemo`] detects this with a streaming
//! fingerprint of each invocation's `(writes, reads, tid)` stream and,
//! once the fingerprint sequence repeats, replays the cached schedule for
//! subsequent matching invocations instead of recomputing it.
//!
//! # Periodic patterns, not just constant ones
//!
//! Many steady-state nests are periodic rather than constant: jacobi
//! ping-pongs between two grids (its access stream repeats every *second*
//! invocation), and fdtd cycles three field sweeps (period three). The
//! memo therefore keeps a short history of invocation fingerprints and a
//! rolling window of full recordings; when the last `2p` fingerprints are
//! periodic with period `p ≤` [`MAX_PERIOD`], the `p` most recent
//! recordings are promoted together as the replay *slots* of one period,
//! and subsequent invocations replay them cyclically. A constant stream is
//! simply the `p = 1` case, promoted after two consecutive identical
//! invocations exactly as before.
//!
//! # Why a full observed period, and what exactly is replayed
//!
//! A condition emitted during invocation *k* may name a dependence in an
//! earlier invocation (that is the whole point of DOMORE). Such a
//! condition only shifts by the period's combined-iteration span when the
//! predecessor invocations it reaches into were themselves part of the
//! repeating pattern — so promotion requires the fingerprint sequence to
//! have completed two full periods, and is additionally refused when any
//! recorded condition reaches *further* back than one period: such a
//! dependence comes from a stale shadow entry (e.g. the last write of a
//! cell that is only read in steady state) that does **not** shift across
//! invocations, so shifting it on replay would name an iteration that may
//! never retire.
//!
//! Replay is verified, not trusted: every iteration's touched sets are
//! re-derived from the workload oracle (which is pure and deterministic)
//! and re-fingerprinted, and the policy is consulted as usual so stateful
//! policies stay in sync — the memo only skips the shadow walk and
//! condition generation. The conditions of a replayed *prefix* depend only
//! on the start-of-invocation shadow and the verified prefix of the
//! stream, so they remain correct even when a later iteration diverges;
//! the caller then rebuilds the shadow for the dispatched prefix (see
//! [`ScheduleMemo::recorded_tid`]) and falls back to full scheduling. Any
//! divergence invalidates the whole period: replay only ever resumes after
//! the pattern has re-established itself over two fresh periods.
//!
//! On a completed replay the shadow is patched with the slot's recorded
//! final-owner state (shifted to the current base) and the combined
//! iteration counter advances by the invocation length, so a later
//! fallback sees exactly the shadow full scheduling would have produced.
//! Slot finals are captured at each slot's own end of invocation, so
//! patches compose across a period the same way live scheduling would
//! have updated the shadow.

use std::collections::{HashSet, VecDeque};

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::{IterNum, ThreadId};

use crate::logic::{FreshState, SchedulerLogic, SyncCondition};

/// Longest fingerprint period the memo will detect. The effective period
/// of a steady-state nest is the least common multiple of its access
/// pattern's period (1 for constant stencils, 2 for ping-pong grids like
/// jacobi, 3 for multi-sweep kernels like fdtd) and the assignment
/// rotation of the policy: round-robin over combined iteration numbers
/// shifts by `iters % workers` each invocation, rotating with period
/// `workers / gcd(iters % workers, workers)`. 32 covers a three-sweep
/// kernel whose rows don't divide an 8-worker pool (lcm(3, 8) = 24);
/// longer pseudo-periods fall back to full scheduling.
pub const MAX_PERIOD: usize = 32;

/// Fingerprints one iteration's access sets and worker assignment.
///
/// The separator constants keep `writes=[1], reads=[]` distinct from
/// `writes=[], reads=[1]`; folding the assigned worker in makes the
/// invocation fingerprint cover the full schedule, not just the stream
/// (round-robin assignments, for instance, shift across invocations unless
/// the iteration count divides evenly by the worker count — a shift that
/// simply shows up as a longer fingerprint period).
fn iter_fingerprint(writes: &[usize], reads: &[usize], tid: ThreadId) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in writes {
        h = splitmix64(h ^ w as u64);
    }
    h = splitmix64(h ^ 0xD1B5_4A32_D192_ED03);
    for &r in reads {
        h = splitmix64(h ^ r as u64);
    }
    splitmix64(h ^ tid as u64)
}

/// One iteration of a recorded invocation.
#[derive(Debug, Clone)]
struct IterRecord {
    fingerprint: u64,
    tid: ThreadId,
    /// `(dep_tid, dep_iter − base)`; negative offsets reach into earlier
    /// invocations of the (repeating) pattern.
    conds: Vec<(ThreadId, i64)>,
}

/// The candidate being recorded during a non-replayed invocation.
#[derive(Debug, Default)]
struct Candidate {
    iters: Vec<IterRecord>,
    /// Every address the invocation touched (for final-owner export).
    touched: HashSet<usize>,
    /// Running fold of the per-iteration fingerprints.
    inv_hash: u64,
}

/// One completed invocation, retained in the rolling recording window.
/// (Its fingerprint lives in the parallel `history` queue.)
#[derive(Debug)]
struct Recorded {
    iters: Vec<IterRecord>,
    /// Fresh end-of-invocation shadow state per touched address, offsets
    /// relative to this invocation's base. Captured only when the
    /// invocation's fingerprint had already appeared in the recent history
    /// (i.e. promotion is plausible), so one-shot streams pay nothing.
    finals: Option<Vec<(usize, FreshState)>>,
}

/// One promoted slot of a replayable period.
#[derive(Debug)]
struct Slot {
    iters: Vec<IterRecord>,
    /// Fresh end-of-invocation shadow state per touched address, offsets
    /// relative to the slot's recording base.
    final_owners: Vec<(usize, FreshState)>,
}

/// A promoted, replayable period: one slot per invocation, cycled in
/// recording order.
#[derive(Debug)]
struct ReplaySet {
    slots: Vec<Slot>,
    /// Slot the next invocation replays.
    next: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Idle,
    Recording,
    Replaying,
    /// Replay diverged (or the invocation was unusable): no recording, no
    /// replaying; the memo invalidates at the invocation's end.
    Fallback,
}

/// Outcome of one replayed iteration.
#[derive(Debug)]
pub enum ReplayStep<'a> {
    /// The stream still matches: dispatch to `tid` as combined iteration
    /// `iter_num`, preceded by `conds` (absolute iteration numbers).
    Match {
        /// Worker the recorded schedule assigned (verified against the
        /// policy's live decision).
        tid: ThreadId,
        /// Combined iteration number of this iteration.
        iter_num: IterNum,
        /// Synchronization conditions, shifted to the current invocation.
        conds: &'a [SyncCondition],
    },
    /// The stream or assignment diverged from the recording. The caller
    /// must rebuild the shadow for the already-dispatched prefix (using
    /// [`ScheduleMemo::recorded_tid`]) and schedule the rest normally.
    Diverged,
}

/// Detects steady-state (possibly periodic) invocation patterns and
/// replays their cached schedules.
///
/// Driven identically by the threaded runtime and the simulator; all
/// scheduling *decisions* flow through here or through
/// [`SchedulerLogic`], so replayed and recomputed invocations are
/// byte-identical (a property the suite's proptests pin down).
#[derive(Debug)]
pub struct ScheduleMemo {
    /// Fingerprints of recently completed invocations, newest last.
    history: VecDeque<u64>,
    /// Full recordings of the last [`MAX_PERIOD`] completed invocations.
    window: VecDeque<Recorded>,
    candidate: Candidate,
    replay: Option<ReplaySet>,
    mode: Mode,
    /// Base combined iteration number of the current invocation.
    base: IterNum,
    /// Iteration count of the current invocation.
    iters: usize,
    /// Scratch buffer for resolved replay conditions.
    resolved: Vec<SyncCondition>,
    hits: u64,
}

impl Default for ScheduleMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl ScheduleMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self {
            history: VecDeque::new(),
            window: VecDeque::new(),
            candidate: Candidate::default(),
            replay: None,
            mode: Mode::Idle,
            base: 0,
            iters: 0,
            resolved: Vec::new(),
            hits: 0,
        }
    }

    /// Number of invocations replayed from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Whether a promoted schedule is currently held.
    pub fn is_replayable(&self) -> bool {
        self.replay.is_some()
    }

    /// Begins an invocation of `iters` iterations whose first combined
    /// iteration number is `base`. Returns `true` when the invocation will
    /// be replayed (drive it with [`ScheduleMemo::replay_step`]); `false`
    /// means the caller schedules normally and feeds every iteration to
    /// [`ScheduleMemo::record_step`]. Pass `usable = false` when this
    /// invocation cannot be memoized or replayed (dead-worker rerouting in
    /// play, memoization disabled): the memo invalidates and stays out of
    /// the way.
    pub fn begin_invocation(&mut self, iters: usize, base: IterNum, usable: bool) -> bool {
        self.base = base;
        self.iters = iters;
        if !usable {
            self.invalidate();
            self.mode = Mode::Fallback;
            return false;
        }
        if let Some(r) = &self.replay {
            if r.slots[r.next].iters.len() == iters {
                self.mode = Mode::Replaying;
                return true;
            }
            // The iteration count changed: the stream cannot match.
            self.invalidate();
        }
        self.candidate.iters.clear();
        self.candidate.touched.clear();
        self.candidate.inv_hash = splitmix64(iters as u64);
        self.mode = Mode::Recording;
        false
    }

    /// Feeds one normally-scheduled iteration into the candidate recording.
    /// No-op outside recording mode.
    pub fn record_step(
        &mut self,
        writes: &[usize],
        reads: &[usize],
        tid: ThreadId,
        conds: &[SyncCondition],
    ) {
        if self.mode != Mode::Recording {
            return;
        }
        let fp = iter_fingerprint(writes, reads, tid);
        self.candidate.inv_hash = splitmix64(self.candidate.inv_hash ^ fp);
        self.candidate.touched.extend(writes.iter().copied());
        self.candidate.touched.extend(reads.iter().copied());
        let base = self.base as i64;
        self.candidate.iters.push(IterRecord {
            fingerprint: fp,
            tid,
            conds: conds
                .iter()
                .map(|c| (c.dep_tid, c.dep_iter as i64 - base))
                .collect(),
        });
    }

    /// Verifies and replays iteration `iter`. `assigned` is the policy's
    /// live decision (after any dead-worker rerouting); a mismatch with the
    /// recording — of assignment or of access stream — reports
    /// [`ReplayStep::Diverged`] and switches the memo to fallback.
    pub fn replay_step(
        &mut self,
        iter: usize,
        writes: &[usize],
        reads: &[usize],
        assigned: ThreadId,
    ) -> ReplayStep<'_> {
        debug_assert_eq!(self.mode, Mode::Replaying);
        let r = self.replay.as_ref().expect("replaying without a memo");
        let rec = &r.slots[r.next].iters[iter];
        if rec.tid != assigned || rec.fingerprint != iter_fingerprint(writes, reads, assigned) {
            self.mode = Mode::Fallback;
            return ReplayStep::Diverged;
        }
        let base = self.base as i64;
        self.resolved.clear();
        self.resolved
            .extend(rec.conds.iter().map(|&(dep_tid, off)| SyncCondition {
                dep_tid,
                dep_iter: (base + off) as u64,
            }));
        ReplayStep::Match {
            tid: assigned,
            iter_num: self.base + iter as u64,
            conds: &self.resolved,
        }
    }

    /// Worker the recording assigned to iteration `iter` — the catch-up
    /// handle after a divergence: the caller re-runs
    /// [`SchedulerLogic::schedule_rw`] for the dispatched prefix with these
    /// assignments (discarding the conditions, which were already emitted
    /// correctly) to bring the shadow up to date.
    pub fn recorded_tid(&self, iter: usize) -> ThreadId {
        let r = self.replay.as_ref().expect("no recorded schedule");
        r.slots[r.next].iters[iter].tid
    }

    /// Completes the invocation. On a finished replay, patches `logic`'s
    /// shadow with the slot's recorded final-owner state, advances its
    /// combined iteration counter past the invocation, cycles to the next
    /// slot of the period, and returns `true` (the caller counts the cache
    /// hit). On the record path, pushes the recording into the rolling
    /// window and promotes the most recent period when the fingerprint
    /// history shows two full repetitions and every condition stays within
    /// one period of history (see the module docs for why both gates are
    /// required).
    pub fn end_invocation(&mut self, logic: &mut SchedulerLogic) -> bool {
        let mode = std::mem::replace(&mut self.mode, Mode::Idle);
        match mode {
            Mode::Replaying => {
                let r = self.replay.as_mut().expect("replaying without a memo");
                let slot = &r.slots[r.next];
                for (addr, fresh) in &slot.final_owners {
                    logic.apply_fresh(*addr, self.base, fresh);
                }
                logic.skip_iterations(self.iters as u64);
                r.next = (r.next + 1) % r.slots.len();
                self.hits += 1;
                true
            }
            Mode::Recording => {
                let hash = self.candidate.inv_hash;
                // Only pay the final-owner export when this fingerprint has
                // recurred recently — a necessary condition for it to ever
                // become a slot of a promoted period.
                let finals = self.history.contains(&hash).then(|| {
                    self.candidate
                        .touched
                        .iter()
                        .map(|&addr| (addr, logic.export_fresh(addr, self.base)))
                        .collect()
                });
                self.window.push_back(Recorded {
                    iters: std::mem::take(&mut self.candidate.iters),
                    finals,
                });
                if self.window.len() > MAX_PERIOD {
                    self.window.pop_front();
                }
                self.history.push_back(hash);
                if self.history.len() > 2 * MAX_PERIOD {
                    self.history.pop_front();
                }
                self.try_promote();
                false
            }
            Mode::Fallback => {
                self.invalidate();
                false
            }
            Mode::Idle => false,
        }
    }

    /// Promotes the `p` most recent recordings when the fingerprint history
    /// ends in two full periods of the smallest period `p ≤ MAX_PERIOD`
    /// and the recordings pass the stale-dependence (shift-stability) gate.
    fn try_promote(&mut self) {
        let n = self.history.len();
        let Some(p) = (1..=MAX_PERIOD).find(|&p| {
            n >= 2 * p && (0..p).all(|i| self.history[n - 1 - i] == self.history[n - 1 - p - i])
        }) else {
            return;
        };
        if self.window.len() < p {
            return;
        }
        let slots_start = self.window.len() - p;
        let window = self.window.make_contiguous();
        let period = &window[slots_start..];
        // Every slot needs captured finals, and every condition must stay
        // within one period's combined-iteration span: anything older is a
        // stale, non-shifting dependence.
        let span: i64 = period.iter().map(|r| r.iters.len() as i64).sum();
        let promotable = period.iter().all(|r| {
            r.finals.is_some()
                && r.iters
                    .iter()
                    .all(|it| it.conds.iter().all(|&(_, off)| off >= -span))
        });
        if !promotable {
            return;
        }
        let slots = self
            .window
            .drain(slots_start..)
            .map(|r| Slot {
                iters: r.iters,
                final_owners: r.finals.expect("checked above"),
            })
            .collect();
        self.replay = Some(ReplaySet { slots, next: 0 });
        self.history.clear();
        self.window.clear();
    }

    fn invalidate(&mut self) {
        self.history.clear();
        self.window.clear();
        self.replay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `memo` + `logic` through one invocation of `stream`
    /// (per-iteration `(tid, writes, reads)`), collecting the dispatched
    /// `(tid, iter_num, conds)` tuples exactly as the runtime would.
    fn run_invocation(
        memo: &mut ScheduleMemo,
        logic: &mut SchedulerLogic,
        stream: &[(ThreadId, Vec<usize>, Vec<usize>)],
    ) -> (Vec<(ThreadId, IterNum, Vec<SyncCondition>)>, bool) {
        let base = logic.next_iter_num();
        let mut out = Vec::new();
        let replaying = memo.begin_invocation(stream.len(), base, true);
        let mut iter = 0;
        if replaying {
            while iter < stream.len() {
                let (tid, ref writes, ref reads) = stream[iter];
                match memo.replay_step(iter, writes, reads, tid) {
                    ReplayStep::Match {
                        tid,
                        iter_num,
                        conds,
                    } => {
                        out.push((tid, iter_num, conds.to_vec()));
                        iter += 1;
                    }
                    ReplayStep::Diverged => {
                        let mut scratch = Vec::new();
                        for (k, (rt, w, r)) in stream.iter().enumerate().take(iter) {
                            debug_assert_eq!(*rt, memo.recorded_tid(k));
                            scratch.clear();
                            let _ = logic.schedule_rw(memo.recorded_tid(k), w, r, &mut scratch);
                        }
                        break;
                    }
                }
            }
        }
        while iter < stream.len() {
            let (tid, ref writes, ref reads) = stream[iter];
            let mut conds = Vec::new();
            let iter_num = logic.schedule_rw(tid, writes, reads, &mut conds);
            memo.record_step(writes, reads, tid, &conds);
            out.push((tid, iter_num, conds));
            iter += 1;
        }
        let hit = memo.end_invocation(logic);
        (out, hit)
    }

    /// The reference: the same stream scheduled with a plain
    /// `SchedulerLogic` and no memo.
    fn run_reference(
        logic: &mut SchedulerLogic,
        stream: &[(ThreadId, Vec<usize>, Vec<usize>)],
    ) -> Vec<(ThreadId, IterNum, Vec<SyncCondition>)> {
        stream
            .iter()
            .map(|(tid, writes, reads)| {
                let mut conds = Vec::new();
                let iter_num = logic.schedule_rw(*tid, writes, reads, &mut conds);
                (*tid, iter_num, conds)
            })
            .collect()
    }

    /// A jacobi-like steady stream: iteration i writes cell i and reads its
    /// neighbours, round-robin across `workers` (with `iters % workers ==
    /// 0` so assignments are shift-stable).
    fn stencil_stream(iters: usize, workers: usize) -> Vec<(ThreadId, Vec<usize>, Vec<usize>)> {
        (0..iters)
            .map(|i| {
                let reads = vec![(i + iters - 1) % iters, (i + 1) % iters];
                (i % workers, vec![i], reads)
            })
            .collect()
    }

    #[test]
    fn replay_is_byte_identical_to_recomputation() {
        let stream = stencil_stream(12, 3);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(12);
        let mut reference = SchedulerLogic::with_dense_shadow(12);
        for inv in 0..6 {
            let (got, hit) = run_invocation(&mut memo, &mut logic, &stream);
            let want = run_reference(&mut reference, &stream);
            assert_eq!(got, want, "invocation {inv} diverged");
            // Invocation 0 seeds, 1 records a matching candidate, 2.. replay.
            assert_eq!(hit, inv >= 2, "invocation {inv}");
        }
        assert_eq!(memo.hits(), 4);
    }

    #[test]
    fn divergent_invocation_falls_back_and_recovers() {
        let steady = stencil_stream(8, 2);
        let mut changed = steady.clone();
        changed[5].1 = vec![0]; // different write set mid-invocation
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        let script = [
            &steady, &steady, &steady, &changed, &steady, &steady, &steady,
        ];
        let mut hits = 0;
        for stream in script {
            let (got, hit) = run_invocation(&mut memo, &mut logic, stream);
            let want = run_reference(&mut reference, stream);
            assert_eq!(got, want);
            hits += u64::from(hit);
        }
        // Replays: invocation 2 and (after re-warming on 4 and 5) 6.
        assert_eq!(hits, 2);
        assert_eq!(memo.hits(), hits);
    }

    #[test]
    fn alternating_assignments_promote_at_period_two() {
        // 5 iterations round-robin on 2 workers: assignments shift by one
        // every invocation, so the fingerprint sequence alternates A B A B
        // and the memo promotes the two-invocation period after seeing it
        // twice (end of invocation 3); invocations 4.. replay.
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        let mut hits = 0u64;
        for inv in 0..8u64 {
            let stream: Vec<_> = (0..5)
                .map(|i| (((inv * 5 + i) % 2) as usize, vec![i as usize], vec![]))
                .collect();
            let (got, hit) = run_invocation(&mut memo, &mut logic, &stream);
            assert_eq!(got, run_reference(&mut reference, &stream));
            assert_eq!(hit, inv >= 4, "invocation {inv}");
            hits += u64::from(hit);
        }
        assert_eq!(hits, 4);
    }

    #[test]
    fn three_phase_streams_promote_at_period_three() {
        // An fdtd-like sweep cycle: three distinct access phases repeating
        // every third invocation. Promotion needs two full periods
        // (invocations 0..=5); invocations 6.. replay their phase's slot.
        let phase = |j: usize| -> Vec<(ThreadId, Vec<usize>, Vec<usize>)> {
            (0..4)
                .map(|i| {
                    let w = (j * 4 + i) % 12;
                    let r = ((j + 1) * 4 + i) % 12;
                    (i % 2, vec![w], vec![r])
                })
                .collect()
        };
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(12);
        let mut reference = SchedulerLogic::with_dense_shadow(12);
        let mut hits = 0u64;
        for inv in 0..12usize {
            let stream = phase(inv % 3);
            let (got, hit) = run_invocation(&mut memo, &mut logic, &stream);
            assert_eq!(
                got,
                run_reference(&mut reference, &stream),
                "invocation {inv}"
            );
            assert_eq!(hit, inv >= 6, "invocation {inv}");
            hits += u64::from(hit);
        }
        assert_eq!(memo.hits(), hits);
        assert_eq!(hits, 6);
    }

    #[test]
    fn aperiodic_streams_never_promote() {
        // Iteration 0 of invocation k additionally reads cell k, so every
        // invocation fingerprints differently: the history never shows a
        // repetition, no finals are ever exported, and nothing promotes.
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(64);
        let mut reference = SchedulerLogic::with_dense_shadow(64);
        for inv in 0..12usize {
            let stream: Vec<(ThreadId, Vec<usize>, Vec<usize>)> = (0..5)
                .map(|i| {
                    let reads = if i == 0 { vec![32 + inv] } else { vec![] };
                    (i % 2, vec![i], reads)
                })
                .collect();
            let (got, hit) = run_invocation(&mut memo, &mut logic, &stream);
            assert_eq!(got, run_reference(&mut reference, &stream));
            assert!(!hit);
        }
        assert!(!memo.is_replayable());
    }

    #[test]
    fn rotations_beyond_max_period_never_promote() {
        // Iteration i of invocation k writes cell (i + k) % 37: the
        // fingerprint period is 37 > MAX_PERIOD, so the memo never
        // promotes no matter how long the run.
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(37);
        let mut reference = SchedulerLogic::with_dense_shadow(37);
        for inv in 0..(2 * MAX_PERIOD + 8) {
            let stream: Vec<(ThreadId, Vec<usize>, Vec<usize>)> = (0..5)
                .map(|i| (i % 2, vec![(i + inv) % 37], vec![]))
                .collect();
            let (got, hit) = run_invocation(&mut memo, &mut logic, &stream);
            assert_eq!(got, run_reference(&mut reference, &stream), "inv {inv}");
            assert!(!hit);
        }
        assert!(!memo.is_replayable());
    }

    #[test]
    fn stale_dependences_block_promotion() {
        // Cell 7 is written once up front and only *read* afterwards: every
        // steady-state invocation emits a condition on that never-shifting
        // write, which must disqualify replay (shifting it would name an
        // iteration that never retires).
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        let warmup: Vec<(ThreadId, Vec<usize>, Vec<usize>)> =
            vec![(0, vec![7], vec![]), (1, vec![3], vec![])];
        let steady: Vec<(ThreadId, Vec<usize>, Vec<usize>)> =
            vec![(0, vec![0], vec![7]), (1, vec![1], vec![7])];
        let (got, _) = run_invocation(&mut memo, &mut logic, &warmup);
        assert_eq!(got, run_reference(&mut reference, &warmup));
        for _ in 0..5 {
            let (got, hit) = run_invocation(&mut memo, &mut logic, &steady);
            assert_eq!(got, run_reference(&mut reference, &steady));
            assert!(!hit, "stale-dep schedule must never replay");
        }
    }

    #[test]
    fn unusable_invocation_invalidates() {
        let stream = stencil_stream(6, 2);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(6);
        for _ in 0..3 {
            run_invocation(&mut memo, &mut logic, &stream);
        }
        assert!(memo.is_replayable());
        // A dead-worker invocation: scheduled normally, memo told to stand
        // down.
        let base = logic.next_iter_num();
        assert!(!memo.begin_invocation(stream.len(), base, false));
        for (tid, writes, reads) in &stream {
            let mut conds = Vec::new();
            let _ = logic.schedule_rw(*tid, writes, reads, &mut conds);
            memo.record_step(writes, reads, *tid, &conds); // must be a no-op
        }
        assert!(!memo.end_invocation(&mut logic));
        assert!(!memo.is_replayable(), "unusable invocation invalidates");
        // Two further clean invocations re-warm it.
        run_invocation(&mut memo, &mut logic, &stream);
        run_invocation(&mut memo, &mut logic, &stream);
        let (_, hit) = run_invocation(&mut memo, &mut logic, &stream);
        assert!(hit);
    }

    /// Warms `memo` until `stream` replays, mirroring every invocation
    /// into `reference`.
    fn warm(
        memo: &mut ScheduleMemo,
        logic: &mut SchedulerLogic,
        reference: &mut SchedulerLogic,
        stream: &[(ThreadId, Vec<usize>, Vec<usize>)],
    ) {
        for _ in 0..3 {
            let (got, _) = run_invocation(memo, logic, stream);
            assert_eq!(got, run_reference(reference, stream));
        }
        assert!(memo.is_replayable());
    }

    #[test]
    fn fingerprint_divergence_at_first_iteration_falls_back() {
        // The very first replayed iteration already mismatches (no
        // dispatched prefix to catch up): the fallback must still schedule
        // the whole invocation byte-identically to the reference.
        let steady = stencil_stream(8, 2);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        warm(&mut memo, &mut logic, &mut reference, &steady);
        let mut changed = steady.clone();
        changed[0].2 = vec![5]; // different read set at iteration 0
        let (got, hit) = run_invocation(&mut memo, &mut logic, &changed);
        assert_eq!(got, run_reference(&mut reference, &changed));
        assert!(!hit, "a diverged invocation is not a cache hit");
        assert!(!memo.is_replayable(), "divergence invalidates the memo");
    }

    #[test]
    fn fingerprint_divergence_at_last_iteration_falls_back() {
        // Divergence on the final iteration: the longest possible
        // dispatched prefix must be caught up through `recorded_tid` and
        // the shadow must end bit-identical to plain scheduling —
        // observable through the *next* invocation's conditions.
        let steady = stencil_stream(8, 2);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        warm(&mut memo, &mut logic, &mut reference, &steady);
        let mut changed = steady.clone();
        let last = changed.len() - 1;
        changed[last].1 = vec![2]; // write set differs only at the end
        let (got, hit) = run_invocation(&mut memo, &mut logic, &changed);
        assert_eq!(got, run_reference(&mut reference, &changed));
        assert!(!hit);
        // The shadow state after fallback must drive identical sync
        // conditions on the following invocations.
        for inv in 0..3 {
            let (got, _) = run_invocation(&mut memo, &mut logic, &steady);
            assert_eq!(
                got,
                run_reference(&mut reference, &steady),
                "post-fallback invocation {inv}"
            );
        }
    }

    #[test]
    fn assignment_divergence_falls_back_like_a_fingerprint_mismatch() {
        // Same access stream, different live policy decision (dead-worker
        // rerouting): `replay_step` must treat the tid mismatch exactly
        // like a fingerprint mismatch.
        let steady = stencil_stream(8, 2);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(8);
        let mut reference = SchedulerLogic::with_dense_shadow(8);
        warm(&mut memo, &mut logic, &mut reference, &steady);
        let mut rerouted = steady.clone();
        rerouted[3].0 = (rerouted[3].0 + 1) % 2;
        let (got, hit) = run_invocation(&mut memo, &mut logic, &rerouted);
        assert_eq!(got, run_reference(&mut reference, &rerouted));
        assert!(!hit);
        assert!(!memo.is_replayable());
        // Re-warms and replays again afterwards.
        warm(&mut memo, &mut logic, &mut reference, &steady);
        let (_, hit) = run_invocation(&mut memo, &mut logic, &steady);
        assert!(hit);
    }

    #[test]
    fn changed_iteration_count_is_not_replayed() {
        let stream = stencil_stream(6, 2);
        let mut memo = ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(6);
        let mut reference = SchedulerLogic::with_dense_shadow(6);
        for _ in 0..3 {
            run_invocation(&mut memo, &mut logic, &stream);
            run_reference(&mut reference, &stream);
        }
        assert!(memo.is_replayable());
        let short: Vec<_> = stream[..4].to_vec();
        let (got, hit) = run_invocation(&mut memo, &mut logic, &short);
        assert_eq!(got, run_reference(&mut reference, &short));
        assert!(!hit);
    }
}
