//! Memory access signatures for misspeculation detection (§4.2.1).
//!
//! SPECCROSS never logs individual accesses; each task instead folds the
//! addresses it touches into a small *signature*, and the checker thread
//! declares two tasks conflicting when their signatures overlap. Signatures
//! are conservative: overlap may be a false positive (triggering unnecessary
//! misspeculation recovery, which is safe) but disjoint signatures guarantee
//! independence.
//!
//! Two schemes are provided, matching the thesis:
//!
//! * [`RangeSignature`] — the default: the min/max of speculatively accessed
//!   addresses, split by reads and writes. Works well for clustered accesses
//!   (stencils, block updates).
//! * [`BloomSignature`] — a Bloom filter over addresses, better for random
//!   access patterns where a range would cover everything.
//!
//! The paper exposes the generator as a callback so each program can pick a
//! scheme; here that is the [`AccessSignature`] trait.

use crate::hash::splitmix64;

/// How an address was touched, for conflict purposes.
///
/// Two reads never conflict; any pairing involving a write does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The task only reads the location.
    Read,
    /// The task writes (or reads and writes) the location.
    Write,
}

/// A conservative summary of one task's memory accesses.
///
/// Implementations must satisfy: if task A performs a write to address `x`
/// and task B performs any access to `x`, then
/// `a.conflicts_with(&b) == true` after both accesses were
/// [`record`](AccessSignature::record)ed. The converse need not hold (false
/// positives are allowed).
pub trait AccessSignature: Clone + Send + std::fmt::Debug + 'static {
    /// Creates the empty signature (no accesses recorded).
    fn empty() -> Self;

    /// Folds one access into the signature.
    fn record(&mut self, addr: usize, kind: AccessKind);

    /// Whether the two summarized access sets may conflict
    /// (write/write or read/write overlap).
    fn conflicts_with(&self, other: &Self) -> bool;

    /// Whether no access has been recorded.
    fn is_empty(&self) -> bool;

    /// Folds `other` into `self` so that the result summarizes the union of
    /// both access sets.
    ///
    /// The union must stay conservative in both directions: for any
    /// signature `q`, if `other.conflicts_with(&q)` (or `self` before the
    /// call conflicted with `q`) then the merged `self.conflicts_with(&q)`.
    /// This is what lets a per-epoch *aggregate* signature stand in for
    /// every member of the epoch — a request disjoint from the aggregate is
    /// disjoint from each member individually.
    fn merge(&mut self, other: &Self);

    /// Resets to the empty signature, retaining any allocation.
    fn clear(&mut self) {
        *self = Self::empty();
    }

    /// A conservative inclusive address interval covering every recorded
    /// access (reads and writes), or `None` when the signature is empty.
    ///
    /// The span is used to *route* signatures (e.g. to checker shards), not
    /// to detect conflicts, so it only needs to be a cover: every recorded
    /// address must lie inside it, but it may include untouched addresses.
    fn addr_span(&self) -> Option<(usize, usize)>;
}

/// Min/max address-range signature (the thesis default, §4.2.1).
///
/// Reads and writes are tracked as separate ranges so that two tasks that
/// only read a common region are not flagged.
///
/// ```
/// use crossinvoc_runtime::signature::{AccessKind, AccessSignature, RangeSignature};
///
/// let mut a = RangeSignature::empty();
/// let mut b = RangeSignature::empty();
/// a.record(10, AccessKind::Write);
/// b.record(100, AccessKind::Write);
/// assert!(!a.conflicts_with(&b));
/// b.record(10, AccessKind::Read);
/// assert!(a.conflicts_with(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSignature {
    read_min: usize,
    read_max: usize,
    write_min: usize,
    write_max: usize,
}

impl RangeSignature {
    fn has_reads(&self) -> bool {
        self.read_min <= self.read_max
    }

    fn has_writes(&self) -> bool {
        self.write_min <= self.write_max
    }

    /// The inclusive write range, if any write was recorded.
    pub fn write_range(&self) -> Option<(usize, usize)> {
        self.has_writes()
            .then_some((self.write_min, self.write_max))
    }

    /// The inclusive read range, if any read was recorded.
    pub fn read_range(&self) -> Option<(usize, usize)> {
        self.has_reads().then_some((self.read_min, self.read_max))
    }
}

fn ranges_overlap(a_min: usize, a_max: usize, b_min: usize, b_max: usize) -> bool {
    a_min <= b_max && b_min <= a_max
}

impl AccessSignature for RangeSignature {
    fn empty() -> Self {
        Self {
            read_min: usize::MAX,
            read_max: 0,
            write_min: usize::MAX,
            write_max: 0,
        }
    }

    fn record(&mut self, addr: usize, kind: AccessKind) {
        match kind {
            AccessKind::Read => {
                self.read_min = self.read_min.min(addr);
                self.read_max = self.read_max.max(addr);
            }
            AccessKind::Write => {
                self.write_min = self.write_min.min(addr);
                self.write_max = self.write_max.max(addr);
            }
        }
    }

    fn conflicts_with(&self, other: &Self) -> bool {
        let ww = self.has_writes()
            && other.has_writes()
            && ranges_overlap(
                self.write_min,
                self.write_max,
                other.write_min,
                other.write_max,
            );
        let wr = self.has_writes()
            && other.has_reads()
            && ranges_overlap(
                self.write_min,
                self.write_max,
                other.read_min,
                other.read_max,
            );
        let rw = self.has_reads()
            && other.has_writes()
            && ranges_overlap(
                self.read_min,
                self.read_max,
                other.write_min,
                other.write_max,
            );
        ww || wr || rw
    }

    fn is_empty(&self) -> bool {
        !self.has_reads() && !self.has_writes()
    }

    fn merge(&mut self, other: &Self) {
        // Empty ranges are (MAX, 0), so plain min/max folding absorbs them
        // without special-casing: min(MAX, x) = x and max(0, x) = x.
        self.read_min = self.read_min.min(other.read_min);
        self.read_max = self.read_max.max(other.read_max);
        self.write_min = self.write_min.min(other.write_min);
        self.write_max = self.write_max.max(other.write_max);
    }

    fn addr_span(&self) -> Option<(usize, usize)> {
        // The (MAX, 0) empty convention makes min/max folding across the
        // two ranges absorb whichever one is absent.
        if self.is_empty() {
            return None;
        }
        Some((
            self.read_min.min(self.write_min),
            self.read_max.max(self.write_max),
        ))
    }
}

/// Number of 64-bit words in a [`BloomSignature`] filter.
const BLOOM_WORDS: usize = 8;
/// Hash functions per recorded address.
const BLOOM_HASHES: u64 = 2;

/// Bloom-filter signature for scattered access patterns.
///
/// 512 bits, two hash functions. With the task sizes used in the thesis
/// (tens of accesses per task) the false-positive rate stays far below the
/// misspeculation budget; the `sig_ablate` bench quantifies the trade-off
/// against [`RangeSignature`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomSignature {
    reads: [u64; BLOOM_WORDS],
    writes: [u64; BLOOM_WORDS],
    // Inclusive bounds of every recorded address ((MAX, 0) when empty),
    // kept alongside the filters so the signature can be routed by span
    // (see `AccessSignature::addr_span`). Not consulted by
    // `conflicts_with`: the filters alone stay the conflict authority.
    addr_min: usize,
    addr_max: usize,
}

impl BloomSignature {
    fn set(bits: &mut [u64; BLOOM_WORDS], addr: usize) {
        for h in 0..BLOOM_HASHES {
            let hash = splitmix64(addr as u64 ^ (h.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5)));
            let bit = (hash % (BLOOM_WORDS as u64 * 64)) as usize;
            bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    fn intersects(a: &[u64; BLOOM_WORDS], b: &[u64; BLOOM_WORDS]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }
}

impl AccessSignature for BloomSignature {
    fn empty() -> Self {
        Self {
            reads: [0; BLOOM_WORDS],
            writes: [0; BLOOM_WORDS],
            addr_min: usize::MAX,
            addr_max: 0,
        }
    }

    fn record(&mut self, addr: usize, kind: AccessKind) {
        match kind {
            AccessKind::Read => Self::set(&mut self.reads, addr),
            AccessKind::Write => Self::set(&mut self.writes, addr),
        }
        self.addr_min = self.addr_min.min(addr);
        self.addr_max = self.addr_max.max(addr);
    }

    fn conflicts_with(&self, other: &Self) -> bool {
        Self::intersects(&self.writes, &other.writes)
            || Self::intersects(&self.writes, &other.reads)
            || Self::intersects(&self.reads, &other.writes)
    }

    fn is_empty(&self) -> bool {
        self.reads.iter().all(|&w| w == 0) && self.writes.iter().all(|&w| w == 0)
    }

    fn merge(&mut self, other: &Self) {
        // Bitwise OR is exactly Bloom-filter union: a bit set in either
        // filter is set in the union, so membership queries stay
        // conservative.
        for (a, b) in self.reads.iter_mut().zip(&other.reads) {
            *a |= b;
        }
        for (a, b) in self.writes.iter_mut().zip(&other.writes) {
            *a |= b;
        }
        self.addr_min = self.addr_min.min(other.addr_min);
        self.addr_max = self.addr_max.max(other.addr_max);
    }

    fn clear(&mut self) {
        // The trait default (`*self = Self::empty()`) is correct but builds
        // a fresh value; zeroing the words in place honors the "retaining
        // any allocation" contract and keeps the per-task reset branchless.
        self.reads.fill(0);
        self.writes.fill(0);
        self.addr_min = usize::MAX;
        self.addr_max = 0;
    }

    fn addr_span(&self) -> Option<(usize, usize)> {
        (self.addr_min <= self.addr_max).then_some((self.addr_min, self.addr_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soundness<S: AccessSignature>() {
        // Write/any overlap must be reported.
        let mut a = S::empty();
        let mut b = S::empty();
        a.record(7, AccessKind::Write);
        b.record(7, AccessKind::Read);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));

        let mut c = S::empty();
        c.record(7, AccessKind::Write);
        assert!(a.conflicts_with(&c));
    }

    fn read_read_never_conflicts<S: AccessSignature>() {
        let mut a = S::empty();
        let mut b = S::empty();
        for addr in 0..64 {
            a.record(addr, AccessKind::Read);
            b.record(addr, AccessKind::Read);
        }
        assert!(!a.conflicts_with(&b));
    }

    fn empty_conflicts_with_nothing<S: AccessSignature>() {
        let empty = S::empty();
        assert!(empty.is_empty());
        let mut busy = S::empty();
        busy.record(1, AccessKind::Write);
        assert!(!empty.conflicts_with(&busy));
        assert!(!busy.conflicts_with(&empty));
    }

    #[test]
    fn range_soundness() {
        soundness::<RangeSignature>();
    }

    #[test]
    fn bloom_soundness() {
        soundness::<BloomSignature>();
    }

    #[test]
    fn range_read_read() {
        read_read_never_conflicts::<RangeSignature>();
    }

    #[test]
    fn bloom_read_read() {
        read_read_never_conflicts::<BloomSignature>();
    }

    #[test]
    fn range_empty() {
        empty_conflicts_with_nothing::<RangeSignature>();
    }

    #[test]
    fn bloom_empty() {
        empty_conflicts_with_nothing::<BloomSignature>();
    }

    #[test]
    fn range_disjoint_writes_do_not_conflict() {
        let mut a = RangeSignature::empty();
        let mut b = RangeSignature::empty();
        for addr in 0..10 {
            a.record(addr, AccessKind::Write);
        }
        for addr in 20..30 {
            b.record(addr, AccessKind::Write);
        }
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn range_is_conservative_over_gaps() {
        // The range [0, 100] covers untouched addresses: a false positive.
        let mut a = RangeSignature::empty();
        a.record(0, AccessKind::Write);
        a.record(100, AccessKind::Write);
        let mut b = RangeSignature::empty();
        b.record(50, AccessKind::Write); // never actually touched by `a`
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn bloom_distinguishes_scattered_writes_better_than_range() {
        // Two tasks writing interleaved but disjoint scattered addresses:
        // range flags them, bloom (usually) does not.
        let mut ra = RangeSignature::empty();
        let mut rb = RangeSignature::empty();
        let mut ba = BloomSignature::empty();
        let mut bb = BloomSignature::empty();
        ra.record(0, AccessKind::Write);
        ra.record(1000, AccessKind::Write);
        ba.record(0, AccessKind::Write);
        ba.record(1000, AccessKind::Write);
        rb.record(500, AccessKind::Write);
        bb.record(500, AccessKind::Write);
        assert!(ra.conflicts_with(&rb));
        assert!(!ba.conflicts_with(&bb), "bloom should separate 3 addresses");
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut s = BloomSignature::empty();
        s.record(3, AccessKind::Write);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    fn merge_is_conservative_union<S: AccessSignature>() {
        let mut a = S::empty();
        a.record(10, AccessKind::Write);
        let mut b = S::empty();
        b.record(200, AccessKind::Read);
        let mut q_w = S::empty();
        q_w.record(10, AccessKind::Read);
        let mut q_r = S::empty();
        q_r.record(200, AccessKind::Write);

        let mut agg = a.clone();
        agg.merge(&b);
        // Anything conflicting with a member conflicts with the aggregate.
        assert!(agg.conflicts_with(&q_w));
        assert!(agg.conflicts_with(&q_r));

        // Merging an empty signature changes nothing.
        let before = format!("{agg:?}");
        agg.merge(&S::empty());
        assert_eq!(format!("{agg:?}"), before);

        // Merging into an empty signature adopts the member's conflicts.
        let mut from_empty = S::empty();
        from_empty.merge(&a);
        assert!(from_empty.conflicts_with(&q_w));
        assert!(!from_empty.is_empty());
    }

    #[test]
    fn range_merge_union() {
        merge_is_conservative_union::<RangeSignature>();
    }

    #[test]
    fn bloom_merge_union() {
        merge_is_conservative_union::<BloomSignature>();
    }

    #[test]
    fn range_merge_keeps_read_write_split() {
        let mut a = RangeSignature::empty();
        a.record(5, AccessKind::Read);
        let mut b = RangeSignature::empty();
        b.record(50, AccessKind::Read);
        a.merge(&b);
        // Two read-only signatures stay read-only after union: no conflict
        // against another reader of the same region.
        let mut reader = RangeSignature::empty();
        reader.record(20, AccessKind::Read);
        assert!(!a.conflicts_with(&reader));
        assert_eq!(a.read_range(), Some((5, 50)));
        assert_eq!(a.write_range(), None);
    }

    #[test]
    fn bloom_clear_zeroes_in_place() {
        let mut s = BloomSignature::empty();
        for addr in 0..128 {
            s.record(addr, AccessKind::Write);
            s.record(addr * 3 + 1, AccessKind::Read);
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s, BloomSignature::empty());
    }

    fn addr_span_covers_all_accesses<S: AccessSignature>() {
        let mut s = S::empty();
        assert_eq!(s.addr_span(), None);
        s.record(40, AccessKind::Read);
        assert_eq!(s.addr_span(), Some((40, 40)));
        s.record(7, AccessKind::Write);
        s.record(90, AccessKind::Read);
        assert_eq!(s.addr_span(), Some((7, 90)));

        let mut other = S::empty();
        other.record(3, AccessKind::Write);
        other.record(55, AccessKind::Read);
        s.merge(&other);
        assert_eq!(s.addr_span(), Some((3, 90)));

        s.clear();
        assert_eq!(s.addr_span(), None);
    }

    #[test]
    fn range_addr_span() {
        addr_span_covers_all_accesses::<RangeSignature>();
    }

    #[test]
    fn bloom_addr_span() {
        addr_span_covers_all_accesses::<BloomSignature>();
    }

    #[test]
    fn range_exposes_recorded_ranges() {
        let mut s = RangeSignature::empty();
        assert_eq!(s.read_range(), None);
        assert_eq!(s.write_range(), None);
        s.record(5, AccessKind::Read);
        s.record(9, AccessKind::Read);
        s.record(2, AccessKind::Write);
        assert_eq!(s.read_range(), Some((5, 9)));
        assert_eq!(s.write_range(), Some((2, 2)));
    }
}
