//! End-to-end tests of the SPECCROSS engine: correctness under speculation,
//! deterministic recovery, checkpointing, irreversible epochs and profiling.

use std::sync::atomic::{AtomicU64, Ordering};

use crossinvoc_runtime::SharedSlice;
use crossinvoc_speccross::prelude::*;
use crossinvoc_speccross::{SpecError, SpecWorkload};

/// A ping-pong stencil: epoch e reads cells of the (e-1)-parity array and
/// writes the e-parity array; task t of epoch e writes cell t and reads
/// cells t-1, t, t+1 of the other array. Real cross-epoch dependences with
/// distance ≈ one epoch of tasks.
struct PingPong {
    a: SharedSlice<u64>,
    b: SharedSlice<u64>,
    epochs: usize,
}

impl PingPong {
    fn new(n: usize, epochs: usize) -> Self {
        Self {
            a: SharedSlice::from_vec((0..n as u64).collect()),
            b: SharedSlice::from_vec(vec![0; n]),
            epochs,
        }
    }

    fn n(&self) -> usize {
        self.a.len()
    }

    fn sequential(n: usize, epochs: usize) -> Vec<u64> {
        let mut a: Vec<u64> = (0..n as u64).collect();
        let mut b = vec![0u64; n];
        for _ in 0..epochs {
            for t in 0..n {
                let left = a[t.saturating_sub(1)];
                let right = a[(t + 1).min(n - 1)];
                b[t] = left.wrapping_add(a[t]).wrapping_add(right) / 3 + 1;
            }
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    fn result(&mut self) -> Vec<u64> {
        if self.epochs.is_multiple_of(2) {
            self.a.snapshot()
        } else {
            self.b.snapshot()
        }
    }
}

impl SpecWorkload for PingPong {
    type State = (Vec<u64>, Vec<u64>);

    fn num_epochs(&self) -> usize {
        self.epochs
    }

    fn num_tasks(&self, _epoch: usize) -> usize {
        self.n()
    }

    fn execute_task(&self, epoch: usize, task: usize, _tid: usize, rec: &mut dyn AccessRecorder) {
        let n = self.n();
        let (src, dst, base_src, base_dst) = if epoch.is_multiple_of(2) {
            (&self.a, &self.b, 0usize, n)
        } else {
            (&self.b, &self.a, n, 0usize)
        };
        let lo = task.saturating_sub(1);
        let hi = (task + 1).min(n - 1);
        rec.read(base_src + lo);
        rec.read(base_src + hi);
        rec.write(base_dst + task);
        // SAFETY: same-epoch tasks write disjoint cells of `dst` and only
        // read `src`; cross-epoch conflicts are the engine's concern.
        unsafe {
            let left = src.read(lo);
            let mid = src.read(task);
            let right = src.read(hi);
            dst.write(task, left.wrapping_add(mid).wrapping_add(right) / 3 + 1);
        }
    }

    fn snapshot(&self) -> Self::State {
        let read_all = |s: &SharedSlice<u64>| {
            (0..s.len())
                .map(|i| unsafe { s.read(i) })
                .collect::<Vec<_>>()
        };
        (read_all(&self.a), read_all(&self.b))
    }

    fn restore(&self, state: &Self::State) {
        for (i, v) in state.0.iter().enumerate() {
            unsafe { self.a.write(i, *v) };
        }
        for (i, v) in state.1.iter().enumerate() {
            unsafe { self.b.write(i, *v) };
        }
    }
}

#[test]
fn speculative_matches_sequential_when_gated() {
    for workers in [1, 2, 4] {
        let mut w = PingPong::new(32, 10);
        // The profiled distance for this stencil is about one epoch of
        // tasks; gate accordingly so dependences never misspeculate.
        let profile = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(
            &PingPong::new(32, 4),
            4,
        );
        assert!(profile.min_distance.is_some());
        let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
            SpecConfig::with_workers(workers).spec_distance(profile.min_distance),
        )
        .execute(&w)
        .unwrap();
        assert_eq!(
            report.stats.misspeculations, 0,
            "gated run never rolls back"
        );
        assert_eq!(w.result(), PingPong::sequential(32, 10));
        assert_eq!(report.stats.tasks, 32 * 10);
        assert_eq!(report.stats.epochs, 10);
    }
}

#[test]
fn ungated_speculation_recovers_to_correct_result() {
    // Without a gate the engine may or may not misspeculate depending on
    // interleaving; either way the final state must be sequential.
    for seed in 0..3 {
        let mut w = PingPong::new(16 + seed, 8);
        let report =
            SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(3))
                .execute(&w)
                .unwrap();
        assert_eq!(w.result(), PingPong::sequential(16 + seed, 8));
        assert!(report.stats.tasks >= (16 + seed as u64) * 8);
    }
}

#[test]
fn barrier_baseline_matches_sequential() {
    let mut w = PingPong::new(24, 7);
    let report =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(3))
            .execute_with_barriers(&w)
            .unwrap();
    assert_eq!(w.result(), PingPong::sequential(24, 7));
    assert_eq!(report.stats.tasks, 24 * 7);
    assert_eq!(report.comparisons, 0);
}

#[test]
fn injected_conflict_triggers_exactly_one_recovery() {
    let mut w = PingPong::new(16, 9);
    let d =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(16, 4), 4)
            .min_distance;
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .spec_distance(d)
            .inject_conflict_at_epoch(Some(4)),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(report.conflicts.len(), 1);
    assert_eq!(w.result(), PingPong::sequential(16, 9));
}

#[test]
fn frequent_checkpoints_bound_reexecution() {
    let mut w = PingPong::new(16, 20);
    let d =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(16, 4), 4)
            .min_distance;
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .checkpoint_every(2)
            .spec_distance(d)
            .inject_conflict_at_epoch(Some(10)),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    // Pass-start checkpoints plus periodic ones: with an interval of 2 over
    // 20 epochs there must be many.
    assert!(
        report.stats.checkpoints >= 5,
        "expected frequent checkpoints, got {}",
        report.stats.checkpoints
    );
    assert_eq!(w.result(), PingPong::sequential(16, 20));
}

/// Wraps PingPong, marking one epoch irreversible and counting how many
/// times its tasks run.
struct WithIrreversible {
    inner: PingPong,
    irreversible_epoch: usize,
    irreversible_runs: AtomicU64,
}

impl SpecWorkload for WithIrreversible {
    type State = <PingPong as SpecWorkload>::State;

    fn num_epochs(&self) -> usize {
        self.inner.num_epochs()
    }
    fn num_tasks(&self, epoch: usize) -> usize {
        self.inner.num_tasks(epoch)
    }
    fn execute_task(&self, epoch: usize, task: usize, tid: usize, rec: &mut dyn AccessRecorder) {
        if epoch == self.irreversible_epoch {
            self.irreversible_runs.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.execute_task(epoch, task, tid, rec);
    }
    fn snapshot(&self) -> Self::State {
        self.inner.snapshot()
    }
    fn restore(&self, state: &Self::State) {
        self.inner.restore(state);
    }
    fn epoch_is_irreversible(&self, epoch: usize) -> bool {
        epoch == self.irreversible_epoch
    }
}

#[test]
fn irreversible_epoch_is_never_reexecuted() {
    let n = 16;
    let epochs = 10;
    let mut w = WithIrreversible {
        inner: PingPong::new(n, epochs),
        irreversible_epoch: 3,
        irreversible_runs: AtomicU64::new(0),
    };
    let d = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(n, 4), 4)
        .min_distance;
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .spec_distance(d)
            .inject_conflict_at_epoch(Some(7)),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(
        w.irreversible_runs.load(Ordering::Relaxed),
        n as u64,
        "the irreversible epoch must run its tasks exactly once"
    );
    assert_eq!(w.inner.result(), PingPong::sequential(n, epochs));
}

#[test]
fn zero_workers_is_an_error() {
    let w = PingPong::new(4, 2);
    let engine =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(0));
    assert_eq!(engine.execute(&w).unwrap_err(), SpecError::NoWorkers);
    assert_eq!(
        engine.execute_with_barriers(&w).unwrap_err(),
        SpecError::NoWorkers
    );
}

#[test]
fn empty_region_completes_immediately() {
    let mut w = PingPong::new(4, 0);
    let report =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(2))
            .execute(&w)
            .unwrap();
    assert_eq!(report.stats.tasks, 0);
    assert_eq!(w.result(), PingPong::sequential(4, 0));
}

#[test]
fn profile_reports_stencil_distance() {
    let w = PingPong::new(32, 6);
    let profile = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&w, 4);
    // Task t of epoch e writes cell t of one array; task t' of epoch e+1
    // reads cells t'-1..t'+1 of that array. With range signatures the whole
    // epoch overlaps, so the profiled distance is small but positive.
    let d = profile.min_distance.expect("stencil must conflict");
    assert!((1..=64).contains(&d), "distance {d} out of expected range");
    assert!(profile.conflicts > 0);
    assert_eq!(profile.tasks, 32 * 6);
}

#[test]
fn check_requests_are_counted() {
    let w = PingPong::new(8, 5);
    let d = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(8, 4), 4)
        .min_distance;
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2).spec_distance(d),
    )
    .execute(&w)
    .unwrap();
    // Every task records accesses, so every task files a request.
    assert_eq!(report.stats.check_requests, 8 * 5);
}

#[test]
fn engine_works_with_bloom_signatures() {
    use crossinvoc_runtime::BloomSignature;
    let mut w = PingPong::new(16, 6);
    let d = SpecCrossEngine::<BloomSignature>::profile(&PingPong::new(16, 4), 4).min_distance;
    let report =
        SpecCrossEngine::<BloomSignature>::new(SpecConfig::with_workers(2).spec_distance(d))
            .execute(&w)
            .unwrap();
    assert_eq!(w.result(), PingPong::sequential(16, 6));
    // Bloom filters may add false-positive conflicts but never unsoundness;
    // a gated run still recovers to the right answer either way.
    assert!(report.stats.tasks >= 16 * 6);
}

#[test]
fn sharded_checker_matches_sequential_when_gated() {
    let d =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(32, 4), 4)
            .min_distance;
    for shards in [2, 3, 8] {
        let mut w = PingPong::new(32, 10);
        let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
            SpecConfig::with_workers(3)
                .spec_distance(d)
                .checker_shards(shards),
        )
        .execute(&w)
        .unwrap();
        assert_eq!(
            report.stats.misspeculations, 0,
            "gated run never rolls back ({shards} shards)"
        );
        assert_eq!(w.result(), PingPong::sequential(32, 10));
        assert_eq!(report.stats.tasks, 32 * 10);
        // Every task files exactly one check request regardless of how many
        // shards its span fans out to.
        assert_eq!(report.stats.check_requests, 32 * 10);
    }
}

#[test]
fn sharded_ungated_speculation_recovers_to_correct_result() {
    for shards in [2, 4] {
        let mut w = PingPong::new(16, 8);
        let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
            SpecConfig::with_workers(3).checker_shards(shards),
        )
        .execute(&w)
        .unwrap();
        assert_eq!(w.result(), PingPong::sequential(16, 8));
        assert!(report.stats.tasks >= 16 * 8);
    }
}

#[test]
fn sharded_injected_conflict_recovers_once() {
    let mut w = PingPong::new(16, 9);
    let d =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(16, 4), 4)
            .min_distance;
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .spec_distance(d)
            .checker_shards(4)
            .inject_conflict_at_epoch(Some(4)),
    )
    .execute(&w)
    .unwrap();
    // The injected conflict may be seen by several shard threads of the same
    // pass; first-wins must still report exactly one misspeculation.
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(report.conflicts.len(), 1);
    assert_eq!(w.result(), PingPong::sequential(16, 9));
}

#[test]
fn sharded_trace_carries_one_census_row_per_shard() {
    use crossinvoc_runtime::trace::{checker_shard_of_tid, Event};
    let d =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::profile(&PingPong::new(16, 4), 4)
            .min_distance;
    let w = PingPong::new(16, 6);
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .spec_distance(d)
            .checker_shards(3)
            .trace(4096),
    )
    .execute(&w)
    .unwrap();
    let trace = report.trace.expect("tracing was configured");
    let mut rows = Vec::new();
    let mut routed = 0u64;
    for rec in trace.records() {
        if let Event::CheckerShard {
            shard,
            shards,
            requests,
        } = rec.event
        {
            assert_eq!(shards, 3);
            assert_eq!(checker_shard_of_tid(rec.tid), Some(shard as usize));
            rows.push(shard);
            routed += requests;
        }
    }
    rows.sort_unstable();
    assert_eq!(rows, vec![0, 1, 2], "one census row per shard per pass");
    // Fan-out can only add deliveries on top of the per-task requests.
    assert!(routed >= report.stats.check_requests);
}

#[test]
fn invalid_shard_counts_are_rejected() {
    let w = PingPong::new(4, 2);
    for shards in [0, crossinvoc_speccross::MAX_SHARDS + 1] {
        let engine = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
            SpecConfig::with_workers(2).checker_shards(shards),
        );
        assert!(matches!(
            engine.execute(&w).unwrap_err(),
            SpecError::InvalidConfig(_)
        ));
    }
}

/// Per-epoch address clusters with a same-index chain across epochs: epoch e
/// task t writes cell `e*tasks + t`, reading its own cell from epoch e-1.
/// The chain stays on one worker under round-robin distribution, so the
/// `pir::elide` analysis would prove every access — modelled here by the
/// `proven` mask.
struct ClusteredChain {
    data: SharedSlice<u64>,
    epochs: usize,
    tasks: usize,
    proven: fn(usize) -> bool,
}

impl ClusteredChain {
    fn new(epochs: usize, tasks: usize, proven: fn(usize) -> bool) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; epochs * tasks]),
            epochs,
            tasks,
            proven,
        }
    }

    fn expected(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.epochs * self.tasks];
        for e in 0..self.epochs {
            for t in 0..self.tasks {
                v[e * self.tasks + t] = if e == 0 {
                    t as u64
                } else {
                    v[(e - 1) * self.tasks + t] + 1
                };
            }
        }
        v
    }
}

impl SpecWorkload for ClusteredChain {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }
    fn num_tasks(&self, _epoch: usize) -> usize {
        self.tasks
    }
    fn execute_task(&self, epoch: usize, task: usize, _tid: usize, rec: &mut dyn AccessRecorder) {
        let dst = epoch * self.tasks + task;
        rec.write(dst);
        let value = if epoch == 0 {
            task as u64
        } else {
            let src = (epoch - 1) * self.tasks + task;
            rec.read(src);
            // SAFETY: the same-index chain is owned by this worker; the
            // engine checks (or statically proves) cross-epoch safety.
            unsafe { self.data.read(src) + 1 }
        };
        unsafe { self.data.write(dst, value) };
    }
    fn snapshot(&self) -> Self::State {
        (0..self.data.len())
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }
    fn restore(&self, state: &Self::State) {
        for (i, v) in state.iter().enumerate() {
            unsafe { self.data.write(i, *v) };
        }
    }
    fn epoch_is_proven(&self, epoch: usize) -> bool {
        (self.proven)(epoch)
    }
}

#[test]
fn elision_skips_all_checks_on_a_fully_proven_region() {
    let mut w = ClusteredChain::new(10, 12, |_| true);
    let expected = w.expected();
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(3).elide(true).trace(1 << 14),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(w.data.snapshot(), expected);
    assert_eq!(report.stats.misspeculations, 0);
    assert_eq!(
        report.stats.check_requests, 0,
        "nothing reaches the checker"
    );
    assert_eq!(report.stats.tasks, 10 * 12);
    assert_eq!(report.stats.elided_signatures, 10 * 12);
    assert_eq!(report.stats.elided_admits, 10 * 12);
    // Epoch 0 tasks record one access, later tasks two.
    assert_eq!(report.stats.proven_accesses, 12 + 9 * 12 * 2);
    let trace = report.trace.expect("tracing was configured");
    let elided: u64 = trace
        .records()
        .iter()
        .filter_map(|r| match r.event {
            crossinvoc_runtime::trace::Event::CheckElided { tasks, .. } => Some(tasks),
            _ => None,
        })
        .sum();
    assert_eq!(elided, 10 * 12, "check_elided rows account for every task");
}

#[test]
fn elision_keeps_unproven_epochs_on_the_full_path() {
    let mut w = ClusteredChain::new(10, 12, |e| e.is_multiple_of(2));
    let expected = w.expected();
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(3).elide(true),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(w.data.snapshot(), expected);
    assert_eq!(report.stats.misspeculations, 0);
    // Odd epochs (5 of 10) keep filing one request per task.
    assert_eq!(report.stats.check_requests, 5 * 12);
    assert_eq!(report.stats.elided_signatures, 5 * 12);
}

#[test]
fn proven_mask_is_inert_without_config_elide() {
    let mut w = ClusteredChain::new(8, 10, |_| true);
    let expected = w.expected();
    let report =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(3))
            .execute(&w)
            .unwrap();
    assert_eq!(w.data.snapshot(), expected);
    assert_eq!(report.stats.check_requests, 8 * 10, "default stays checked");
    assert_eq!(report.stats.elided_signatures, 0);
}

#[test]
fn elision_composes_with_shards_and_recovery() {
    // Unproven epochs + an injected conflict: elision must not disturb
    // rollback, barrier re-execution, or the sharded checker.
    let mut w = ClusteredChain::new(12, 8, |e| e < 6);
    let expected = w.expected();
    let report = SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(
        SpecConfig::with_workers(2)
            .elide(true)
            .checker_shards(3)
            .inject_conflict_at_epoch(Some(8)),
    )
    .execute(&w)
    .unwrap();
    assert_eq!(report.stats.misspeculations, 1);
    assert_eq!(w.data.snapshot(), expected);
}

#[test]
fn single_worker_speculation_is_trivially_sound() {
    let mut w = PingPong::new(8, 5);
    let report =
        SpecCrossEngine::<crossinvoc_runtime::RangeSignature>::new(SpecConfig::with_workers(1))
            .execute(&w)
            .unwrap();
    assert_eq!(w.result(), PingPong::sequential(8, 5));
    assert_eq!(report.stats.misspeculations, 0, "one worker cannot race");
}
