//! Property-based tests of the system's core invariants.
//!
//! The correctness argument of both techniques reduces to a handful of
//! invariants — signature conservativeness, scheduling-condition
//! well-formedness, runtime/sequential equivalence, simulator determinism.
//! These are checked here over randomized inputs with `proptest`.

use proptest::prelude::*;

use crossinvoc_domore::logic::SchedulerLogic;
use crossinvoc_domore::prelude::*;
use crossinvoc_runtime::signature::{AccessKind, AccessSignature, BloomSignature, RangeSignature};
use crossinvoc_runtime::telemetry::{RegionState, ServerRegistry};
use crossinvoc_runtime::trace::{Event, Trace, TraceSink};
use crossinvoc_runtime::SharedSlice;
use crossinvoc_sim::prelude::*;
use crossinvoc_speccross::Position;

/// An access list: (address, is_write) pairs over a small address space.
fn accesses() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0usize..64, any::<bool>()), 0..12)
}

fn fill<S: AccessSignature>(list: &[(usize, bool)]) -> S {
    let mut s = S::empty();
    for &(addr, w) in list {
        s.record(
            addr,
            if w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        );
    }
    s
}

/// Exact conflict semantics: some address touched by both, with at least
/// one write on each... (write/any overlap).
fn exact_conflict(a: &[(usize, bool)], b: &[(usize, bool)]) -> bool {
    a.iter()
        .any(|&(addr, aw)| b.iter().any(|&(baddr, bw)| addr == baddr && (aw || bw)))
}

proptest! {
    /// Signatures are conservative: a real conflict is never missed.
    #[test]
    fn range_signature_never_misses_conflicts(a in accesses(), b in accesses()) {
        if exact_conflict(&a, &b) {
            let sa: RangeSignature = fill(&a);
            let sb: RangeSignature = fill(&b);
            prop_assert!(sa.conflicts_with(&sb));
        }
    }

    /// Same soundness property for the Bloom scheme.
    #[test]
    fn bloom_signature_never_misses_conflicts(a in accesses(), b in accesses()) {
        if exact_conflict(&a, &b) {
            let sa: BloomSignature = fill(&a);
            let sb: BloomSignature = fill(&b);
            prop_assert!(sa.conflicts_with(&sb));
        }
    }

    /// Conflict detection is symmetric for both schemes.
    #[test]
    fn signature_conflicts_are_symmetric(a in accesses(), b in accesses()) {
        let (ra, rb): (RangeSignature, RangeSignature) = (fill(&a), fill(&b));
        prop_assert_eq!(ra.conflicts_with(&rb), rb.conflicts_with(&ra));
        let (ba, bb): (BloomSignature, BloomSignature) = (fill(&a), fill(&b));
        prop_assert_eq!(ba.conflicts_with(&bb), bb.conflicts_with(&ba));
    }

    /// Scheduler conditions are well-formed: they reference strictly
    /// earlier combined iterations, never the assigned worker itself, and
    /// at most one condition per predecessor worker.
    #[test]
    fn scheduler_conditions_are_well_formed(
        stream in prop::collection::vec((0usize..4, prop::collection::vec(0usize..32, 0..4)), 1..80)
    ) {
        let mut logic = SchedulerLogic::with_dense_shadow(32);
        let mut conds = Vec::new();
        for (tid, addrs) in stream {
            conds.clear();
            let iter = logic.schedule(tid, &addrs, &mut conds);
            for c in &conds {
                prop_assert!(c.dep_iter < iter, "conditions look backwards");
                prop_assert_ne!(c.dep_tid, tid, "no self-waits");
            }
            let mut tids: Vec<_> = conds.iter().map(|c| c.dep_tid).collect();
            tids.sort_unstable();
            tids.dedup();
            prop_assert_eq!(tids.len(), conds.len(), "one condition per worker");
        }
    }

    /// Position packing round-trips and preserves order.
    #[test]
    fn position_pack_is_order_preserving(e1 in 0u32..1000, t1 in 0u32..1000,
                                         e2 in 0u32..1000, t2 in 0u32..1000) {
        let a = Position { epoch: e1, task: t1 };
        let b = Position { epoch: e2, task: t2 };
        prop_assert_eq!(Position::unpack(a.pack()), a);
        prop_assert_eq!(a < b, a.pack() < b.pack());
    }

    /// The simulator is a pure function: identical inputs, identical
    /// timelines.
    #[test]
    fn simulator_is_deterministic(invs in 1usize..12, iters in 1usize..16,
                                  cost_ns in 1u64..10_000, threads in 1usize..9) {
        let w = UniformWorkload::rotating(invs, iters, cost_ns);
        let model = CostModel::default();
        let a = barrier(&w, threads, &model);
        let b = barrier(&w, threads, &model);
        prop_assert_eq!(&a, &b);
        let params = SpecSimParams::with_threads(threads);
        let sa = speccross(&w, &params, &model);
        let sb = speccross(&w, &params, &model);
        prop_assert_eq!(sa.total_ns, sb.total_ns);
    }

    /// Simulated parallel executions respect the work lower bound
    /// (total time ≥ total work / threads) and never beat it.
    #[test]
    fn simulated_time_respects_work_conservation(invs in 1usize..10, iters in 1usize..16,
                                                 cost_ns in 100u64..5_000, threads in 1usize..9) {
        let w = UniformWorkload::independent(invs, iters, cost_ns);
        let work = w.total_work_ns();
        let r = barrier(&w, threads, &CostModel::free());
        prop_assert!(r.total_ns >= work / threads as u64);
        prop_assert!(r.total_ns <= work, "parallel never slower than serial work");
    }
}

/// A fault-injection workload for the robustness property below: task `t`
/// of every epoch increments cell `t`, so the sequential reference is
/// simply `epochs` in every cell and a clean run never conflicts.
struct FaultGrid {
    data: SharedSlice<u64>,
    epochs: usize,
}

impl FaultGrid {
    fn new(n: usize, epochs: usize) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; n]),
            epochs,
        }
    }

    fn cells(&self) -> Vec<u64> {
        (0..self.data.len())
            .map(|i| unsafe { self.data.read(i) })
            .collect()
    }
}

impl crossinvoc_speccross::SpecWorkload for FaultGrid {
    type State = Vec<u64>;

    fn num_epochs(&self) -> usize {
        self.epochs
    }
    fn num_tasks(&self, _epoch: usize) -> usize {
        self.data.len()
    }
    fn execute_task(
        &self,
        _epoch: usize,
        task: usize,
        _tid: usize,
        rec: &mut dyn crossinvoc_speccross::AccessRecorder,
    ) {
        rec.write(task);
        // SAFETY: same-epoch tasks write disjoint cells; cross-epoch
        // revisits are ordered by the engine.
        unsafe { self.data.update(task, |v| *v += 1) };
    }
    fn snapshot(&self) -> Self::State {
        self.cells()
    }
    fn restore(&self, state: &Self::State) {
        for (i, v) in state.iter().enumerate() {
            unsafe { self.data.write(i, *v) };
        }
    }
}

proptest! {
    /// The robustness invariant: a run under *any* seeded fault plan ends,
    /// within the watchdog deadline, in either the sequential reference
    /// state or a typed error — never a deadlock, never an abort.
    #[test]
    fn any_seeded_fault_plan_ends_sequential_or_typed_error(seed in any::<u64>()) {
        use crossinvoc_runtime::fault::FaultPlan;
        use crossinvoc_speccross::{DegradePolicy, SpecConfig, SpecCrossEngine};

        let (epochs, tasks, workers) = (6usize, 6usize, 2usize);
        let plan = FaultPlan::random(seed, epochs as u32, tasks as u64, workers);
        let w = FaultGrid::new(tasks, epochs);
        let result = SpecCrossEngine::<RangeSignature>::new(
            SpecConfig::with_workers(workers)
                .checkpoint_every(2)
                .fault_plan(plan)
                .degrade(DegradePolicy::default())
                .watchdog(std::time::Duration::from_secs(60)),
        )
        .execute(&w);
        match result {
            // Absorbed (possibly degraded): the state must be sequential.
            Ok(report) => {
                prop_assert_eq!(w.cells(), vec![epochs as u64; tasks]);
                prop_assert_eq!(report.stats.epochs >= epochs as u64, true);
            }
            // Not absorbable: a typed error is the contract; reaching this
            // arm at all means no hang and no process abort.
            Err(e) => {
                let _: crossinvoc_speccross::SpecError = e;
            }
        }
    }
}

/// Randomized DOMORE executions on real threads match sequential
/// semantics. Kept outside `proptest!` iteration-count defaults: thread
/// spawning is expensive, so a handful of seeded cases suffice.
#[test]
fn randomized_domore_matches_sequential() {
    struct Random {
        data: SharedSlice<u64>,
        cells: Vec<Vec<usize>>, // per (inv, iter) address sets
        invs: usize,
        iters: usize,
    }
    impl DomoreWorkload for Random {
        fn num_invocations(&self) -> usize {
            self.invs
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.iters
        }
        fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.extend(&self.cells[inv * self.iters + iter]);
        }
        fn execute_iteration(&self, inv: usize, iter: usize, _tid: usize) {
            for &addr in &self.cells[inv * self.iters + iter] {
                // SAFETY: the runtime orders conflicting iterations.
                unsafe {
                    self.data.update(addr, |v| {
                        *v = crossinvoc_runtime::hash::splitmix64(*v ^ (inv * 31 + iter) as u64)
                    })
                };
            }
        }
        fn address_space(&self) -> Option<usize> {
            Some(self.data.len())
        }
    }

    for seed in 0..6u64 {
        let mut rng = crossinvoc_runtime::hash::SplitMix64::new(seed);
        let (invs, iters, space) = (6, 10, 24);
        let cells: Vec<Vec<usize>> = (0..invs * iters)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| rng.next_below(space as u64) as usize)
                    .collect()
            })
            .collect();
        let make = |cells: Vec<Vec<usize>>| Random {
            data: SharedSlice::from_vec(vec![0; space]),
            cells,
            invs,
            iters,
        };
        let mut reference = make(cells.clone());
        for inv in 0..invs {
            for iter in 0..iters {
                reference.execute_iteration(inv, iter, 0);
            }
        }
        let expected = reference.data.snapshot();
        let mut parallel = make(cells);
        DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&parallel)
            .unwrap();
        assert_eq!(parallel.data.snapshot(), expected, "seed {seed}");
    }
}

/// A seeded random DOMORE nest over a small address space, shared by the
/// dispatch-equivalence property below.
struct RandomNest {
    data: SharedSlice<u64>,
    cells: Vec<Vec<usize>>, // per (inv, iter) address sets
    invs: usize,
    iters: usize,
}

impl RandomNest {
    fn generate(seed: u64, invs: usize, iters: usize, space: usize) -> Vec<Vec<usize>> {
        let mut rng = crossinvoc_runtime::hash::SplitMix64::new(seed);
        (0..invs * iters)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| rng.next_below(space as u64) as usize)
                    .collect()
            })
            .collect()
    }

    fn new(cells: Vec<Vec<usize>>, invs: usize, iters: usize, space: usize) -> Self {
        Self {
            data: SharedSlice::from_vec(vec![0; space]),
            cells,
            invs,
            iters,
        }
    }
}

impl DomoreWorkload for RandomNest {
    fn num_invocations(&self) -> usize {
        self.invs
    }
    fn num_iterations(&self, _inv: usize) -> usize {
        self.iters
    }
    fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
        out.extend(&self.cells[inv * self.iters + iter]);
    }
    fn execute_iteration(&self, inv: usize, iter: usize, _tid: usize) {
        for &addr in &self.cells[inv * self.iters + iter] {
            // SAFETY: the runtime orders conflicting iterations.
            unsafe {
                self.data.update(addr, |v| {
                    *v = crossinvoc_runtime::hash::splitmix64(*v ^ (inv * 31 + iter) as u64)
                })
            };
        }
    }
    fn address_space(&self) -> Option<usize> {
        Some(self.data.len())
    }
}

proptest! {
    /// Dispatch-policy transparency: round-robin and adaptive dispatch are
    /// different *placements* of the same dependence-ordered iteration
    /// stream, so both must land in exactly the sequential state — policy
    /// choice can change timing, never observable results.
    #[test]
    fn round_robin_and_adaptive_dispatch_agree_with_sequential(
        seed in any::<u64>(),
        workers in 1usize..=3,
    ) {
        let (invs, iters, space) = (4usize, 8usize, 16usize);
        let cells = RandomNest::generate(seed, invs, iters, space);

        let mut reference = RandomNest::new(cells.clone(), invs, iters, space);
        for inv in 0..invs {
            for iter in 0..iters {
                reference.execute_iteration(inv, iter, 0);
            }
        }
        let expected = reference.data.snapshot();

        for dispatch in [Dispatch::RoundRobin, Dispatch::Adaptive] {
            let mut nest = RandomNest::new(cells.clone(), invs, iters, space);
            DomoreRuntime::new(DomoreConfig::with_workers(workers))
                .with_dispatch(dispatch)
                .execute(&nest)
                .unwrap();
            prop_assert_eq!(
                nest.data.snapshot(),
                expected.clone(),
                "dispatch {:?} diverged (seed {}, {} workers)",
                dispatch,
                seed,
                workers
            );
        }
    }
}

/// Inspector-Executor wavefront soundness: two iterations placed in the
/// same wavefront never conflict (write/any overlap) — checked over random
/// access patterns.
#[test]
fn inspector_wavefronts_are_conflict_free() {
    use crossinvoc_runtime::hash::SplitMix64;
    use crossinvoc_runtime::signature::AccessKind;
    use crossinvoc_sim::inspector::wavefronts;

    #[derive(Debug)]
    struct RandomAccesses {
        cells: Vec<Vec<(usize, AccessKind)>>,
    }
    impl SimWorkload for RandomAccesses {
        fn num_invocations(&self) -> usize {
            1
        }
        fn num_iterations(&self, _inv: usize) -> usize {
            self.cells.len()
        }
        fn iteration_cost(&self, _inv: usize, _iter: usize) -> u64 {
            1
        }
        fn accesses(&self, _inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
            out.extend_from_slice(&self.cells[iter]);
        }
        fn address_space(&self) -> Option<usize> {
            Some(16)
        }
    }

    for seed in 0..20u64 {
        let mut rng = SplitMix64::new(seed);
        let cells: Vec<Vec<(usize, AccessKind)>> = (0..40)
            .map(|_| {
                (0..1 + rng.next_below(3))
                    .map(|_| {
                        let addr = rng.next_below(16) as usize;
                        let kind = if rng.next_below(2) == 0 {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        (addr, kind)
                    })
                    .collect()
            })
            .collect();
        let w = RandomAccesses { cells };
        let fronts = wavefronts(&w, 0);
        for a in 0..40 {
            for b in (a + 1)..40 {
                if fronts[a] != fronts[b] {
                    continue;
                }
                let conflict = w.cells[a].iter().any(|&(addr, ka)| {
                    w.cells[b].iter().any(|&(baddr, kb)| {
                        addr == baddr && (ka == AccessKind::Write || kb == AccessKind::Write)
                    })
                });
                assert!(
                    !conflict,
                    "seed {seed}: iterations {a} and {b} share wavefront {} but conflict",
                    fronts[a]
                );
            }
        }
    }
}

/// Decodes a thread id from raw bits, including the service-thread
/// sentinels that exercise the JSONL writer's special cases.
fn tid_from(raw: u64) -> usize {
    use crossinvoc_runtime::trace::{checker_shard_tid, CHECKER_TID, MANAGER_TID};
    match raw % 10 {
        7 => checker_shard_tid((raw >> 8) as usize % 64),
        8 => CHECKER_TID,
        9 => MANAGER_TID,
        n => n as usize,
    }
}

/// Builds one arbitrary trace [`Event`]: `sel` picks the variant and the
/// raw words fill its fields. (The vendored proptest shim has no
/// `prop_oneof!`, so variant choice is an explicit decode; callers sweep
/// `sel` over `0..15` to guarantee every variant appears in every case.)
fn event_from(
    sel: usize,
    x: (u64, u64, u64),
    y: (u64, u64, u64),
) -> crossinvoc_runtime::trace::Event {
    use crossinvoc_runtime::fault::FaultKind;
    use crossinvoc_runtime::trace::{Event, WakeEdge};
    let (a, b, c) = x;
    let (d, e, f) = y;
    let epoch = a as u32;
    match sel % 15 {
        0 => Event::EpochBegin { epoch },
        1 => Event::EpochEnd { epoch },
        2 => Event::TaskAssign {
            epoch,
            task: b,
            worker: tid_from(c),
        },
        3 => Event::TaskDispatch { epoch, task: b },
        4 => Event::TaskRetire { epoch, task: b },
        5 => Event::BarrierEnter { epoch },
        6 => Event::BarrierLeave { epoch, wait_ns: b },
        7 => Event::Checkpoint { epoch },
        8 => Event::Misspeculation {
            earlier_tid: tid_from(a),
            earlier_epoch: b as u32,
            earlier_task: c,
            later_tid: tid_from(d),
            later_epoch: e as u32,
            later_task: f,
        },
        9 => Event::Degradation { epoch },
        10 => Event::FaultInjected {
            kind: match b % 7 {
                0 => FaultKind::WorkerPanic,
                1 => FaultKind::CheckerStall(c),
                2 => FaultKind::CheckerDeath,
                3 => FaultKind::FalsePositive,
                4 => FaultKind::SnapshotFail,
                5 => FaultKind::RestoreFail,
                _ => FaultKind::Delay(c),
            },
            epoch,
            task: d,
        },
        11 => Event::CheckerSummary {
            epoch,
            skips: b,
            comparisons: c,
        },
        12 => Event::ScheduleCacheHit { epoch },
        13 => Event::CheckerShard {
            shard: b as u32,
            shards: c as u32,
            requests: d,
        },
        _ => Event::Wake {
            edge: WakeEdge::ALL[(b % 4) as usize],
            src_tid: tid_from(c),
            seq: d,
        },
    }
}

proptest! {
    /// The JSONL wire schema is lossless over *every* event variant,
    /// including `Wake` over all four edge classes, the checker-shard tid
    /// band and full-range `u64` fields: a trace built from arbitrary
    /// records round-trips through `to_jsonl`/`from_jsonl` unchanged. At
    /// least 15 records per case and an `i % 15` variant sweep guarantee
    /// full variant coverage in every case, not just in expectation.
    #[test]
    fn trace_jsonl_round_trips_every_event_variant(
        raw in prop::collection::vec(
            (any::<u64>(), any::<u64>(),
             (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            15..40)
    ) {
        use crossinvoc_runtime::trace::{Trace, TraceRecord};
        let records: Vec<TraceRecord> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (t_ns, tid, x, y))| TraceRecord {
                t_ns,
                tid: tid_from(tid),
                event: event_from(i, x, y),
            })
            .collect();
        let trace = Trace::from_records(records);
        let parsed = Trace::from_jsonl(&trace.to_jsonl());
        prop_assert_eq!(parsed.expect("round-trip must parse"), trace);
    }
}

/// The exact overlap-race predicate the checker implements, restated
/// pointwise for the naive reference below: two logged tasks race iff they
/// ran on different workers in different epochs and the earlier-epoch task
/// had not retired when the later-epoch task began.
fn races(
    a: &crossinvoc_speccross::CheckRequest<RangeSignature>,
    b: &crossinvoc_speccross::CheckRequest<RangeSignature>,
) -> bool {
    if a.tid == b.tid || a.pos.epoch == b.pos.epoch {
        return false;
    }
    let (earlier, later) = if a.pos.epoch < b.pos.epoch {
        (a, b)
    } else {
        (b, a)
    };
    earlier.pos >= later.snapshot[earlier.tid] && a.sig.conflicts_with(&b.sig)
}

proptest! {
    /// The epoch-bucketed checker with its aggregate fast path reaches the
    /// same verdict as a naive reference that compares the arriving request
    /// against *every* logged task with the pure race predicate — over
    /// randomized interleavings with monotone progress boards, lagging
    /// snapshot views and interleaved retirement. When the bucketed checker
    /// reports a conflict, the named pair must really race.
    #[test]
    fn bucketed_checker_matches_naive_reference(
        workers in 2usize..5,
        steps in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(0usize..24, 0..4)), 1..100),
    ) {
        use crossinvoc_speccross::{CheckRequest, CheckerState};

        let mut board = vec![Position::ZERO; workers]; // latest started pos
        let mut observed = vec![Position::ZERO; workers]; // lagging view
        let mut live = vec![false; workers];
        let mut bucketed = CheckerState::<RangeSignature>::new(workers);
        let mut naive: Vec<CheckRequest<RangeSignature>> = Vec::new();

        for (r, addrs) in steps {
            let w = (r % workers as u64) as usize;
            // Advance worker `w` to its next position: a fresh epoch with
            // probability 1/3, the next task of the current epoch otherwise.
            let pos = if !live[w] {
                live[w] = true;
                board[w]
            } else if (r >> 4) % 3 == 0 {
                Position { epoch: board[w].epoch + 1, task: 0 }
            } else {
                Position { epoch: board[w].epoch, task: board[w].task + 1 }
            };
            board[w] = pos;
            // Occasionally publish some worker's progress into the lagging
            // view; both moves keep every log's snapshots monotone.
            if (r >> 16) % 2 == 0 {
                let v = ((r >> 20) % workers as u64) as usize;
                observed[v] = board[v];
            }
            observed[w] = pos;
            let mut sig = RangeSignature::empty();
            for &a in &addrs {
                sig.record(a, AccessKind::Write);
            }
            let req = CheckRequest {
                tid: w,
                pos,
                snapshot: observed.clone().into_boxed_slice(),
                sig,
            };

            let expect = naive.iter().any(|logged| races(logged, &req));
            let got = bucketed.admit(req.clone());
            prop_assert_eq!(got.is_some(), expect, "verdicts diverged");
            if let Some(c) = got {
                let find = |(tid, pos): (usize, Position)| {
                    if req.tid == tid && req.pos == pos {
                        req.clone()
                    } else {
                        naive
                            .iter()
                            .find(|q| q.tid == tid && q.pos == pos)
                            .expect("conflict names a logged task")
                            .clone()
                    }
                };
                let (earlier, later) = (find(c.earlier), find(c.later));
                prop_assert!(earlier.pos.epoch < later.pos.epoch);
                prop_assert!(races(&earlier, &later), "reported pair must race");
            }
            naive.push(req);

            // Occasional retirement at a globally-passed epoch; both sides
            // must drop exactly the same entries.
            if (r >> 24) % 8 == 0 {
                let e = board.iter().map(|p| p.epoch).min().unwrap_or(0);
                bucketed.retire_before(e);
                naive.retain(|q| q.pos.epoch >= e);
                prop_assert_eq!(bucketed.logged(), naive.len());
            }
        }
    }

    /// Sharding the checker is verdict-transparent for Range signatures:
    /// over randomized request streams — multi-address spans that straddle
    /// shards, lagging snapshot views, interleaved retirement — every shard
    /// count issues exactly the unsharded verdict at every admission. (The
    /// merge rule under test: a straddling task is admitted iff every
    /// touched shard admits it, and any shard's conflict is the verdict.)
    #[test]
    fn sharded_checker_matches_unsharded_verdicts(
        workers in 2usize..5,
        shards in 2usize..10,
        steps in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(0usize..24, 0..4)), 1..100),
    ) {
        use crossinvoc_speccross::{CheckRequest, CheckerState, ShardedChecker};

        let mut board = vec![Position::ZERO; workers];
        let mut observed = vec![Position::ZERO; workers];
        let mut live = vec![false; workers];
        let mut plain = CheckerState::<RangeSignature>::new(workers);
        let mut sharded = ShardedChecker::<RangeSignature>::new(workers, shards);

        for (r, addrs) in steps {
            let w = (r % workers as u64) as usize;
            let pos = if !live[w] {
                live[w] = true;
                board[w]
            } else if (r >> 4) % 3 == 0 {
                Position { epoch: board[w].epoch + 1, task: 0 }
            } else {
                Position { epoch: board[w].epoch, task: board[w].task + 1 }
            };
            board[w] = pos;
            if (r >> 16) % 2 == 0 {
                let v = ((r >> 20) % workers as u64) as usize;
                observed[v] = board[v];
            }
            observed[w] = pos;
            let mut sig = RangeSignature::empty();
            for &a in &addrs {
                sig.record(a, AccessKind::Write);
            }
            let req = CheckRequest {
                tid: w,
                pos,
                snapshot: observed.clone().into_boxed_slice(),
                sig,
            };
            prop_assert_eq!(
                sharded.admit(req.clone()).is_some(),
                plain.admit(req).is_some(),
                "verdicts diverged at {:?} with {} shards",
                pos,
                shards
            );
            if (r >> 24) % 8 == 0 {
                let e = board.iter().map(|p| p.epoch).min().unwrap_or(0);
                plain.retire_before(e);
                sharded.retire_before(e);
            }
        }
    }
}

/// Drives `memo` + `logic` through one invocation of `stream`
/// (per-iteration `(tid, writes, reads)`), collecting the dispatched
/// `(tid, iter_num, conds)` tuples exactly as the runtime would: replay
/// when the memo offers it, verified per iteration, with shadow catch-up on
/// divergence.
#[allow(clippy::type_complexity)]
fn run_memoized(
    memo: &mut crossinvoc_domore::ScheduleMemo,
    logic: &mut SchedulerLogic,
    stream: &[(usize, Vec<usize>, Vec<usize>)],
) -> (Vec<(usize, u64, Vec<SyncCondition>)>, bool) {
    use crossinvoc_domore::ReplayStep;
    let base = logic.next_iter_num();
    let mut out = Vec::new();
    let mut iter = 0;
    if memo.begin_invocation(stream.len(), base, true) {
        while iter < stream.len() {
            let (tid, ref writes, ref reads) = stream[iter];
            match memo.replay_step(iter, writes, reads, tid) {
                ReplayStep::Match {
                    tid,
                    iter_num,
                    conds,
                } => {
                    out.push((tid, iter_num, conds.to_vec()));
                    iter += 1;
                }
                ReplayStep::Diverged => {
                    // Catch the shadow up over the already-dispatched
                    // prefix, discarding its (already-correct) conditions.
                    let mut scratch = Vec::new();
                    for (k, (_, w, r)) in stream.iter().enumerate().take(iter) {
                        scratch.clear();
                        let _ = logic.schedule_rw(memo.recorded_tid(k), w, r, &mut scratch);
                    }
                    break;
                }
            }
        }
    }
    while iter < stream.len() {
        let (tid, ref writes, ref reads) = stream[iter];
        let mut conds = Vec::new();
        let iter_num = logic.schedule_rw(tid, writes, reads, &mut conds);
        memo.record_step(writes, reads, tid, &conds);
        out.push((tid, iter_num, conds));
        iter += 1;
    }
    let hit = memo.end_invocation(logic);
    (out, hit)
}

proptest! {
    /// Cross-invocation schedule memoization is *transparent*: over any
    /// randomized steady stream — arbitrary per-iteration read/write sets
    /// and worker placements, repeated across invocations with one randomly
    /// perturbed invocation in the middle — the memo-driven scheduler emits
    /// byte-identical `(tid, iter_num, conditions)` streams to a plain
    /// [`SchedulerLogic`] that never memoizes, through warm-up, replay,
    /// mid-replay divergence and re-warming alike.
    #[test]
    fn memoized_schedule_is_byte_identical_to_recomputation(
        workers in 1usize..4,
        raw in prop::collection::vec(
            (any::<u64>(),
             prop::collection::vec(0usize..16, 0..3),
             prop::collection::vec(0usize..16, 0..3)),
            2..24),
        divergence in any::<u64>(),
    ) {
        let stream: Vec<(usize, Vec<usize>, Vec<usize>)> = raw
            .into_iter()
            .map(|(t, w, r)| ((t % workers as u64) as usize, w, r))
            .collect();
        let mut memo = crossinvoc_domore::ScheduleMemo::new();
        let mut logic = SchedulerLogic::with_dense_shadow(16);
        let mut reference = SchedulerLogic::with_dense_shadow(16);
        let mut hits = 0u64;
        for inv in 0..7usize {
            // One invocation (picked by `divergence`) perturbs a single
            // iteration's write set, exercising the fallback path.
            let mut s = stream.clone();
            if inv == (divergence % 7) as usize {
                let k = (divergence >> 8) as usize % s.len();
                s[k].1 = vec![(divergence >> 16) as usize % 16];
            }
            let (got, hit) = run_memoized(&mut memo, &mut logic, &s);
            let want: Vec<(usize, u64, Vec<SyncCondition>)> = s
                .iter()
                .map(|(tid, writes, reads)| {
                    let mut conds = Vec::new();
                    let n = reference.schedule_rw(*tid, writes, reads, &mut conds);
                    (*tid, n, conds)
                })
                .collect();
            prop_assert_eq!(got, want, "invocation {} diverged", inv);
            hits += u64::from(hit);
        }
        prop_assert_eq!(memo.hits(), hits);
    }
}

/// Restoring DOMORE's barrier at every invocation can only slow it down:
/// the barriered executor is never faster than the cross-invocation one.
#[test]
fn barriered_domore_never_beats_full_domore() {
    use crossinvoc_domore::policy::RoundRobin;
    for (invs, iters, cost_ns) in [(20, 8, 500), (5, 64, 3_000), (50, 3, 10_000)] {
        let w = UniformWorkload::rotating(invs, iters, cost_ns);
        let model = CostModel::default();
        let full = domore(&w, 4, &mut RoundRobin, &model);
        let barriered = domore_barriered(&w, 4, &mut RoundRobin, &model);
        assert!(
            barriered.total_ns >= full.total_ns,
            "({invs},{iters},{cost_ns}): {} < {}",
            barriered.total_ns,
            full.total_ns
        );
    }
}

proptest! {
    /// The differential fuzzer's acceptance property: a randomly generated
    /// case with a randomly injected fault schedule always terminates
    /// (watchdog-bounded inside `run_case`) and every engine path either
    /// reproduces the sequential oracle's memory image byte for byte or
    /// fails with a typed error / degraded report — never a hang, never
    /// silent corruption.
    #[test]
    fn fault_injected_cases_terminate_with_clean_outcomes(seed in 0u64..1_000_000) {
        let params = crossinvoc_fuzz::GenParams {
            fault_percent: 100,
            ..crossinvoc_fuzz::GenParams::default()
        };
        let case = crossinvoc_fuzz::generate(seed, &params);
        let report = crossinvoc_fuzz::run_case(&case);
        prop_assert!(
            report.divergence.is_none(),
            "seed {} ({}): {:?}",
            seed,
            case.note,
            report.divergence
        );
    }

    /// Fault-free cases are exact: every applicable path must agree with
    /// the oracle, including the Bloom-signature configurations whose
    /// false positives trigger rollbacks.
    #[test]
    fn fault_free_cases_are_oracle_exact(seed in 0u64..1_000_000) {
        let params = crossinvoc_fuzz::GenParams {
            fault_percent: 0,
            ..crossinvoc_fuzz::GenParams::default()
        };
        let case = crossinvoc_fuzz::generate(seed, &params);
        let report = crossinvoc_fuzz::run_case(&case);
        prop_assert!(
            report.divergence.is_none(),
            "seed {} ({}): {:?}",
            seed,
            case.note,
            report.divergence
        );
    }
}

proptest! {
    /// Static check elision is observationally transparent on real
    /// threads: over random fault-free regions, executing the accepted
    /// plan with elision forced off and forced on both succeeds and leaves
    /// byte-identical memory digests. The off run must never bank an
    /// elided admission (the config flag, not the analysis, gates the fast
    /// path), and a fully-proven region that never misspeculates must
    /// reach the commit point without filing a single check request.
    #[test]
    fn elision_on_and_off_agree_on_memory_digests(seed in 0u64..1_000_000) {
        use crossinvoc_pir::{Memory, SpecCrossPlan};
        use crossinvoc_speccross::SpecConfig;

        let params = crossinvoc_fuzz::GenParams {
            fault_percent: 0,
            ..crossinvoc_fuzz::GenParams::default()
        };
        let case = crossinvoc_fuzz::generate(seed, &params);
        if let Some(outer) = case.outer() {
            if let Ok(plan) = SpecCrossPlan::build(&case.program, outer) {
                let config = |elide: bool| {
                    SpecConfig::with_workers(case.workers)
                        .checkpoint_every(case.checkpoint_every)
                        .checker_shards(case.checker_shards)
                        .epoch_summaries(true)
                        .elide(elide)
                        .watchdog(std::time::Duration::from_secs(60))
                };
                let mut off_mem = Memory::zeroed(&case.program);
                let off = plan
                    .execute_sig::<RangeSignature>(&mut off_mem, config(false))
                    .unwrap_or_else(|e| panic!("seed {seed} ({}): elide-off: {e:?}", case.note));
                let mut on_mem = Memory::zeroed(&case.program);
                let on = plan
                    .execute_sig::<RangeSignature>(&mut on_mem, config(true))
                    .unwrap_or_else(|e| panic!("seed {seed} ({}): elide-on: {e:?}", case.note));
                prop_assert_eq!(
                    off_mem.snapshot(),
                    on_mem.snapshot(),
                    "seed {} ({}): elision changed the memory digest",
                    seed,
                    case.note
                );
                prop_assert_eq!(off.stats.elided_admits, 0, "off run elided");
                prop_assert_eq!(off.stats.elided_signatures, 0, "off run elided");
                if plan.elision().fully_proven() && on.stats.misspeculations == 0 {
                    prop_assert_eq!(
                        on.stats.check_requests,
                        0,
                        "seed {}: fully-proven region still filed checks",
                        seed
                    );
                }
            }
        }
    }

    /// The simulator mirror, where verdict streams *are* deterministic:
    /// the elide flag alone (nothing proven) is timeline-inert, and with
    /// every invocation proven — sound for the disjoint workload — the
    /// verdict stream is unchanged while check traffic and wall-clock only
    /// ever shrink.
    #[test]
    fn sim_elision_preserves_verdict_streams(invs in 1usize..10, iters in 1usize..16,
                                             cost_ns in 1u64..5_000, threads in 1usize..9) {
        let model = CostModel::default();
        let params = |elide: bool| SpecSimParams::with_threads(threads).elide(elide);

        let w = UniformWorkload::rotating(invs, iters, cost_ns);
        let base = speccross(&w, &params(false), &model);
        let flag = speccross(&w, &params(true), &model);
        prop_assert_eq!(base.total_ns, flag.total_ns, "flag alone moved the clock");
        prop_assert_eq!(base.stats.check_requests, flag.stats.check_requests);
        prop_assert_eq!(flag.stats.elided_admits, 0, "elided without a proof");

        let w = UniformWorkload::independent(invs, iters, cost_ns);
        let off = speccross(&w, &params(false), &model);
        let on = speccross(&w.assume_proven(), &params(true), &model);
        prop_assert_eq!(off.stats.misspeculations, on.stats.misspeculations);
        prop_assert_eq!(off.stats.tasks, on.stats.tasks);
        prop_assert_eq!(off.degraded, on.degraded);
        prop_assert!(on.stats.check_requests <= off.stats.check_requests);
        prop_assert!(on.total_ns <= off.total_ns, "elision slowed the sim down");
    }

    /// The flight-recorder substrate: a trace ring of capacity `c` handed
    /// `n` records keeps exactly the newest `min(n, c)` in emission order
    /// and accounts every eviction — `dropped()` is `n - min(n, c)`
    /// *exactly*, on the sink and on the merged [`Trace`] alike, so a
    /// post-mortem dump can always say how much history it is missing.
    #[test]
    fn trace_ring_drop_accounting_is_exact(capacity in 1usize..48, n in 0usize..128) {
        let mut sink = TraceSink::with_capacity(0, capacity);
        for i in 0..n {
            sink.emit_at(i as u64, Event::EpochBegin { epoch: i as u32 });
        }
        let kept = n.min(capacity);
        let evicted = (n - kept) as u64;
        prop_assert_eq!(sink.len(), kept);
        prop_assert_eq!(sink.dropped(), evicted);
        let trace = Trace::from_sinks([sink]);
        prop_assert_eq!(trace.records().len(), kept);
        prop_assert_eq!(trace.dropped(), evicted);
        // Survivors are exactly the newest `kept` records, oldest first.
        for (j, rec) in trace.records().iter().enumerate() {
            prop_assert_eq!(rec.t_ns, evicted + j as u64);
        }
    }

    /// Registry snapshots are consistent at every step of an arbitrary
    /// interleaving of registrations and cell lifecycle mutations: row
    /// counts and counters reflect exactly the operations applied so far,
    /// and a finish is terminal — replaying every cell with the *opposite*
    /// outcome afterwards changes nothing.
    #[test]
    fn registry_snapshots_reflect_applied_operations(
        specs in prop::collection::vec(
            (1usize..5, any::<bool>(), 0u64..4, 0u64..3), 1..8)
    ) {
        let registry = std::sync::Arc::new(ServerRegistry::new(8));
        let mut cells = Vec::new();
        for (i, &(gang, hard_fail, degrades, waits)) in specs.iter().enumerate() {
            let cell = registry.register(i as u64 + 1, "prop", gang);
            // Snapshot mid-registration: earlier regions present, in order.
            prop_assert_eq!(registry.snapshot().regions.len(), i + 1);
            cell.mark_running();
            for _ in 0..waits {
                cell.add_queue_wait(7);
            }
            for _ in 0..degrades {
                cell.add_degrade_event();
            }
            if hard_fail {
                cell.fail(None);
            } else {
                cell.complete(0, false, None);
            }
            cells.push(cell);
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.pool.slots, 8);
        prop_assert_eq!(snap.regions.len(), specs.len());
        for (row, &(gang, hard_fail, degrades, waits)) in snap.regions.iter().zip(&specs) {
            prop_assert_eq!(row.gang, gang);
            prop_assert_eq!(row.queue_wait_ns, waits * 7);
            prop_assert_eq!(row.degrade_events, degrades);
            prop_assert_eq!(row.faults, u64::from(hard_fail));
            let want = if hard_fail { RegionState::Faulted } else { RegionState::Done };
            prop_assert_eq!(row.state, want);
        }
        // Terminality: contradicting finishes must be no-ops.
        for (cell, &(_, hard_fail, _, _)) in cells.iter().zip(&specs) {
            if hard_fail {
                cell.complete(5, true, None);
            } else {
                cell.fail(None);
            }
        }
        prop_assert_eq!(registry.snapshot().regions, snap.regions);
    }
}

/// Snapshots taken *while* a cell is mutated from another thread are
/// always internally consistent: the degrade counter only moves forward,
/// never exceeds what the mutator has applied, a snapshot that observes
/// the terminal state also observes every prior counter update, and the
/// post-join snapshot is exact. (Threaded companion to the sequential
/// `registry_snapshots_reflect_applied_operations` property, following the
/// suite's convention of keeping threaded checks outside `proptest!`.)
#[test]
fn registry_snapshots_stay_consistent_under_concurrent_mutation() {
    const EVENTS: u64 = 10_000;
    let registry = std::sync::Arc::new(ServerRegistry::new(4));
    let cell = registry.register(1, "prop-threaded", 2);
    std::thread::scope(|scope| {
        let mutator = {
            let cell = std::sync::Arc::clone(&cell);
            scope.spawn(move || {
                cell.mark_running();
                for _ in 0..EVENTS {
                    cell.add_degrade_event();
                }
                cell.complete(0, false, None);
            })
        };
        let mut last = 0u64;
        loop {
            let snap = registry.snapshot();
            assert_eq!(snap.regions.len(), 1);
            let row = &snap.regions[0];
            assert!(row.degrade_events >= last, "degrade counter went backwards");
            assert!(row.degrade_events <= EVENTS, "counter overshot the mutator");
            last = row.degrade_events;
            if row.state == RegionState::Done {
                // The terminal-state store releases every prior update.
                assert_eq!(row.degrade_events, EVENTS);
                break;
            }
            std::hint::spin_loop();
        }
        mutator.join().unwrap();
    });
    let row = &registry.snapshot().regions[0];
    assert_eq!(row.degrade_events, EVENTS);
    assert_eq!(row.faults, 0);
    assert_eq!(row.state, RegionState::Done);
}
