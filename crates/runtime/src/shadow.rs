//! Shadow memory for dynamic dependence detection (§3.2.1).
//!
//! DOMORE's scheduler maintains one [`ShadowEntry`] — the `(thread,
//! iteration)` tuple of the thesis — per tracked memory location. Before
//! dispatching an iteration it looks up every address the iteration will
//! touch: a prior entry by a *different* thread is a dynamic dependence and
//! yields a synchronization condition; the entry is then overwritten with the
//! current `(thread, iteration)` pair.
//!
//! The shadow memory is accessed only by the scheduler (or, in the
//! duplicated-scheduler variant of §3.4, by each worker on a private copy),
//! so no internal synchronization is needed.

use std::collections::HashMap;

use crate::{IterNum, ThreadId, NO_ITER};

/// The most recent accessor of a tracked memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShadowEntry {
    /// Worker thread that last touched the location.
    pub tid: ThreadId,
    /// Combined iteration number of that access ([`crate::NO_ITER`] if none).
    pub iter: IterNum,
}

impl ShadowEntry {
    /// The `⟨⊥,⊥⟩` entry: location not yet accessed.
    pub const EMPTY: ShadowEntry = ShadowEntry {
        tid: 0,
        iter: NO_ITER,
    };

    /// Whether the location has been accessed by any scheduled iteration.
    pub fn is_empty(&self) -> bool {
        self.iter == NO_ITER
    }
}

impl Default for ShadowEntry {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Address-indexed table of last accessors.
///
/// Two representations are provided because the thesis notes the time/space
/// trade-off explicitly (§3.2.1: "a more space efficient conflict detecting
/// scheme can also be used"): a dense array for workloads whose tracked
/// addresses are small integers (array indices), and a sparse hash map for
/// pointer-like address sets.
#[derive(Debug, Clone)]
pub enum ShadowMemory {
    /// Dense table over addresses `0..len`.
    Dense(Vec<ShadowEntry>),
    /// Sparse table for arbitrary `usize` addresses.
    Sparse(HashMap<usize, ShadowEntry>),
}

impl ShadowMemory {
    /// Creates a dense shadow memory covering addresses `0..len`.
    pub fn dense(len: usize) -> Self {
        ShadowMemory::Dense(vec![ShadowEntry::EMPTY; len])
    }

    /// Creates an empty sparse shadow memory.
    pub fn sparse() -> Self {
        ShadowMemory::Sparse(HashMap::new())
    }

    /// Returns the last accessor of `addr`.
    ///
    /// # Panics
    ///
    /// Dense shadow memories panic on out-of-range addresses; growing the
    /// table silently would hide workload description bugs.
    pub fn get(&self, addr: usize) -> ShadowEntry {
        match self {
            ShadowMemory::Dense(v) => v[addr],
            ShadowMemory::Sparse(m) => m.get(&addr).copied().unwrap_or_default(),
        }
    }

    /// Records that iteration `iter`, scheduled on thread `tid`, accesses
    /// `addr`, returning the previous entry.
    pub fn update(&mut self, addr: usize, tid: ThreadId, iter: IterNum) -> ShadowEntry {
        let entry = ShadowEntry { tid, iter };
        match self {
            ShadowMemory::Dense(v) => std::mem::replace(&mut v[addr], entry),
            ShadowMemory::Sparse(m) => m.insert(addr, entry).unwrap_or_default(),
        }
    }

    /// Clears every entry back to `⟨⊥,⊥⟩`.
    pub fn clear(&mut self) {
        match self {
            ShadowMemory::Dense(v) => v.fill(ShadowEntry::EMPTY),
            ShadowMemory::Sparse(m) => m.clear(),
        }
    }

    /// Number of locations with a recorded accessor.
    pub fn occupied(&self) -> usize {
        match self {
            ShadowMemory::Dense(v) => v.iter().filter(|e| !e.is_empty()).count(),
            ShadowMemory::Sparse(m) => m.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut shadow: ShadowMemory) {
        assert!(shadow.get(3).is_empty());
        assert_eq!(shadow.occupied(), 0);

        let prev = shadow.update(3, 1, 10);
        assert!(prev.is_empty());
        assert_eq!(shadow.get(3), ShadowEntry { tid: 1, iter: 10 });
        assert_eq!(shadow.occupied(), 1);

        // Overwrite returns the prior accessor (the dependence source).
        let prev = shadow.update(3, 2, 11);
        assert_eq!(prev, ShadowEntry { tid: 1, iter: 10 });
        assert_eq!(shadow.get(3), ShadowEntry { tid: 2, iter: 11 });

        shadow.clear();
        assert!(shadow.get(3).is_empty());
        assert_eq!(shadow.occupied(), 0);
    }

    #[test]
    fn dense_tracks_last_accessor() {
        exercise(ShadowMemory::dense(8));
    }

    #[test]
    fn sparse_tracks_last_accessor() {
        exercise(ShadowMemory::sparse());
    }

    #[test]
    fn sparse_handles_large_addresses() {
        let mut s = ShadowMemory::sparse();
        s.update(usize::MAX - 1, 0, 0);
        assert_eq!(s.get(usize::MAX - 1).iter, 0);
    }

    #[test]
    #[should_panic]
    fn dense_out_of_range_panics() {
        ShadowMemory::dense(4).get(4);
    }

    #[test]
    fn empty_entry_matches_sentinel() {
        assert!(ShadowEntry::EMPTY.is_empty());
        assert!(!ShadowEntry { tid: 0, iter: 0 }.is_empty());
    }
}
