//! ECLAT — the MineBench frequent-itemset miner (Table 5.1, Fig. 5.1(c)).
//!
//! The target nest traverses a graph of itemset nodes (outer loop) and, for
//! each node, appends its items to per-transaction tid-lists (inner loop).
//! Transaction ids repeat heavily across nodes — the thesis profiles the
//! same dependence manifesting in 99% of outer iterations — so speculation
//! is hopeless and DOMORE's non-speculative synchronization is the only
//! cross-invocation option. The scheduler slice (computing which tid-list
//! each item lands in) is comparatively heavy: Table 5.2's 12.5% ratio,
//! which is what caps ECLAT's scaling at ~5 threads in Fig. 5.1(c).

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The ECLAT workload model.
#[derive(Debug, Clone)]
pub struct Eclat {
    /// Itemset nodes (invocations).
    nodes: usize,
    /// Items per node (iterations).
    items_per_node: usize,
    /// Distinct transaction ids (tid-lists).
    transactions: usize,
    seed: u64,
}

impl Eclat {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            nodes: scale.pick(40, 3000),
            items_per_node: 8,
            transactions: scale.pick(24, 96),
            seed,
        }
    }

    /// Transaction id of item `item` of node `node` — a skewed draw, so a
    /// few hot transactions collide constantly.
    fn tid(&self, node: usize, item: usize) -> usize {
        let h = splitmix64(self.seed ^ ((node * 31 + item) as u64));
        // Square the uniform draw: density piles onto low tids.
        let u = (h % self.transactions as u64) as usize;
        (u * u) / self.transactions
    }

    /// Fraction of invocations that append to a tid-list also touched by
    /// the previous invocation (the thesis' 99% manifest rate).
    pub fn manifest_rate(&self) -> f64 {
        let mut hits = 0;
        for node in 1..self.nodes {
            let prev: std::collections::HashSet<usize> = (0..self.items_per_node)
                .map(|i| self.tid(node - 1, i))
                .collect();
            if (0..self.items_per_node).any(|i| prev.contains(&self.tid(node, i))) {
                hits += 1;
            }
        }
        hits as f64 / (self.nodes - 1).max(1) as f64
    }
}

impl SimWorkload for Eclat {
    fn num_invocations(&self) -> usize {
        self.nodes
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.items_per_node
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // Append + list maintenance.
        1_800 + splitmix64(self.seed ^ ((inv * 577 + iter) as u64)) % 500
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        out.push((self.tid(inv, iter), AccessKind::Write));
    }

    fn prologue_cost(&self, _inv: usize) -> u64 {
        // Graph-node traversal.
        250
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        // Table 5.2: 12.5% scheduler/worker ratio — the tid computation is
        // most of the iteration.
        260
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AccessKernel;
    use crossinvoc_domore::prelude::*;

    #[test]
    fn dependence_manifests_almost_always() {
        let e = Eclat::new(Scale::Test, 21);
        let rate = e.manifest_rate();
        assert!(
            rate > 0.9,
            "ECLAT's tid collisions manifest in ~99% of invocations, got {rate:.3}"
        );
    }

    #[test]
    fn tids_are_skewed_toward_hot_lists() {
        let e = Eclat::new(Scale::Test, 21);
        let mut counts = vec![0usize; e.transactions];
        for node in 0..e.nodes {
            for item in 0..e.items_per_node {
                counts[e.tid(node, item)] += 1;
            }
        }
        let hot: usize = counts[..e.transactions / 4].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            hot * 10 > total * 4,
            "the hottest quarter of tids draws an outsized share: {hot}/{total}"
        );
    }

    #[test]
    fn domore_execution_matches_sequential() {
        let kernel = AccessKernel::from_model(Eclat::new(Scale::Test, 21));
        let expected = kernel.sequential_checksum();
        let report = DomoreRuntime::new(DomoreConfig::with_workers(3))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert!(report.stats.sync_conditions > 0);
    }
}
