//! Ablation — range vs. Bloom access signatures (§4.2.1).
//!
//! The signature scheme trades size for false positives: ranges summarize
//! clustered accesses exactly but cover untouched cells between scattered
//! extremes; Bloom filters track scattered sets but can collide. This
//! ablation profiles every SPECCROSS benchmark under both schemes and
//! reports the conflict count and minimum distance each observes — a
//! smaller distance under a scheme is a *false-positive-driven* tightening
//! of the speculative range (extra gating, never unsoundness).

use crossinvoc_bench::write_csv;
use crossinvoc_runtime::signature::{AccessSignature, BloomSignature, RangeSignature};
use crossinvoc_sim::SimWorkload;
use crossinvoc_speccross::DistanceProfiler;
use crossinvoc_workloads::{registry, Scale};

fn profile_with<S: AccessSignature>(model: &dyn SimWorkload) -> (Option<u64>, u64) {
    let mut profiler = DistanceProfiler::<S>::new(6);
    let mut pairs = Vec::new();
    for inv in 0..model.num_invocations() {
        for iter in 0..model.num_iterations(inv) {
            pairs.clear();
            model.accesses(inv, iter, &mut pairs);
            let mut sig = S::empty();
            for &(addr, kind) in &pairs {
                sig.record(addr, kind);
            }
            profiler.record_task(sig);
        }
        profiler.epoch_boundary();
    }
    let report = profiler.report();
    (report.min_distance, report.conflicts)
}

fn fmt(d: Option<u64>) -> String {
    d.map_or("*".to_owned(), |v| v.to_string())
}

fn main() {
    println!("Signature ablation: range vs Bloom (profiled conflicts)");
    println!(
        "{:<16} {:>9} {:>10} {:>9} {:>10}",
        "Benchmark", "range d", "range #", "bloom d", "bloom #"
    );
    let mut rows = Vec::new();
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Test);
        let (rd, rc) = profile_with::<RangeSignature>(model.as_ref());
        let (bd, bc) = profile_with::<BloomSignature>(model.as_ref());
        println!(
            "{:<16} {:>9} {:>10} {:>9} {:>10}",
            info.name,
            fmt(rd),
            rc,
            fmt(bd),
            bc
        );
        rows.push(format!(
            "{},{},{},{},{}",
            info.name,
            fmt(rd),
            rc,
            fmt(bd),
            bc
        ));
    }
    write_csv(
        "sig_ablate",
        "benchmark,range_distance,range_conflicts,bloom_distance,bloom_conflicts",
        &rows,
    );
}
