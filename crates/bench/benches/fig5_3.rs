//! Fig. 5.3 — loop speedup vs. number of checkpoints, with and without a
//! randomly triggered misspeculation (24 threads).
//!
//! More checkpoints cost more when speculation succeeds, but bound the
//! re-execution window when it fails; the two curves cross, which is the
//! figure's point. Geomean over the eight SPECCROSS benchmarks.

use crossinvoc_bench::{geomean, spec_params, trace_capacity, write_csv, write_trace};
use crossinvoc_runtime::critpath::what_if;
use crossinvoc_runtime::hash::SplitMix64;
use crossinvoc_runtime::trace::WakeEdge;
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Fig. 5.3: speedup vs checkpoint count (24 threads)");
    println!(
        "{:>12} {:>14} {:>16}",
        "checkpoints", "no misspec", "with misspec"
    );
    let cost = CostModel::default();
    let threads = 24;
    let mut rows = Vec::new();
    let mut rng = SplitMix64::new(0x5EED);
    for checkpoints in [2usize, 5, 10, 25, 50, 100] {
        let mut clean = Vec::new();
        let mut faulty = Vec::new();
        for info in registry().into_iter().filter(|b| b.speccross) {
            let model = info.model(Scale::Figure);
            let seq = sequential(model.as_ref(), &cost).total_ns;
            let epochs = model.num_invocations();
            let every = (epochs / checkpoints).max(1);
            let params = spec_params(&info, Scale::Figure, threads).checkpoint_every(every);
            clean.push(speccross(model.as_ref(), &params, &cost).speedup_over(seq));
            // One misspeculation at a random task, as the thesis does.
            let total = model.total_iterations();
            let inject = rng.next_below(total.max(1));
            let params = params.inject_misspec_at_task(Some(inject));
            faulty.push(speccross(model.as_ref(), &params, &cost).speedup_over(seq));
        }
        let (c, f) = (geomean(&clean), geomean(&faulty));
        println!("{checkpoints:>12} {c:>13.2}x {f:>15.2}x");
        rows.push(format!("{checkpoints},{c:.4},{f:.4}"));
    }
    write_csv(
        "fig5_3",
        "checkpoints,speedup_no_misspec,speedup_with_misspec",
        &rows,
    );

    // Companion table: per benchmark, the *measured* barrier-vs-SPECCROSS
    // ratio next to the ratio the what-if analysis *predicts* by replaying
    // the traced barrier run with its barrier edges zeroed (see
    // docs/OBSERVABILITY.md). Test scale keeps every record in the ring, so
    // the replay sees the full DAG.
    println!("what-if: predicted vs measured barrier-removal speedup");
    let mut rows = Vec::new();
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Test);
        let params = spec_params(&info, Scale::Test, threads);
        let spec = speccross(model.as_ref(), &params, &cost);
        let bar = barrier_traced(model.as_ref(), threads, &cost, Some(1 << 16));
        let measured = bar.total_ns as f64 / spec.total_ns.max(1) as f64;
        let trace = bar.trace.expect("tracing was requested");
        let predicted = what_if(&trace, &[WakeEdge::Barrier]).predicted_speedup();
        println!(
            "  {:<16} measured={measured:>6.3} predicted={predicted:>6.3}",
            info.name
        );
        rows.push(format!("{},{measured:.4},{predicted:.4}", info.name));
    }
    write_csv(
        "fig5_3_whatif",
        "benchmark,measured_barrier_over_speccross,whatif_predicted_barrier_removal",
        &rows,
    );
    if let Some(cap) = trace_capacity() {
        // One exemplar trace: the first SPECCROSS benchmark with a single
        // mid-region misspeculation, from which trace-report reconstructs
        // the misspeculation ledger and the recovery's barrier tail.
        if let Some(info) = registry().into_iter().find(|b| b.speccross) {
            let model = info.model(Scale::Figure);
            let epochs = model.num_invocations();
            let inject = model.total_iterations() / 2;
            let params = spec_params(&info, Scale::Figure, threads)
                .checkpoint_every((epochs / 10).max(1))
                .inject_misspec_at_task(Some(inject))
                .trace(cap);
            let r = speccross(model.as_ref(), &params, &cost);
            if let Some(trace) = r.trace {
                write_trace(&format!("fig5_3.{}", info.name.to_lowercase()), &trace);
            }
        }
    }
}
