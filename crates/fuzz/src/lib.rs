//! Differential fuzzing of the DOMORE and SPECCROSS engines against a
//! sequential oracle.
//!
//! The paper's correctness claim is *observational equivalence*: a region
//! parallelized by either transformation must leave memory exactly as
//! sequential execution would, and under injected faults it must either
//! still do so or fail with a typed error — never hang, never corrupt
//! silently. Hand-picked kernels cannot cover that claim's surface, so this
//! crate generates it:
//!
//! * [`gen`] — a seeded, deterministic generator of random PIR loop nests,
//!   parameterized over dependence patterns (affine, strided, indirect,
//!   cross-invocation carried), iteration counts, worker counts and
//!   signature kinds, plus random [`crossinvoc_runtime::FaultPlan`]s.
//! * [`oracle`] — an independent, bounds-checked, fueled reference
//!   evaluator (deliberately *not* the production interpreter, which is
//!   itself under test).
//! * [`diff`] — executes one case through every applicable path
//!   (sequential interpreter, barriers, `SpecCrossEngine` with and without
//!   epoch summaries, `DomoreRuntime` with and without schedule
//!   memoization, and the deterministic simulators over a recorded access
//!   trace) and classifies the outcome; [`run_concurrent_pair`] runs two
//!   cases at once through one shared worker pool (the region-server
//!   deployment shape) and holds each to the same contract, and
//!   [`run_concurrent_pair_telemetry`] re-runs the pair with the live
//!   telemetry plane attached, asserting it is observationally invisible.
//! * [`mod@minimize`] — a delta-debugging shrinker that reduces a diverging
//!   case's program and fault schedule to a minimal counterexample.
//! * [`corpus`] — the stable textual case format and the `corpus/`
//!   directory protocol (every checked-in entry is replayed as a
//!   regression test).
//!
//! Everything is keyed by one `u64` master seed: `generate(seed)` →
//! program + fault plan + engine knobs, so `fuzz-diff --seed N` reproduces
//! any failure exactly.

#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod minimize;
pub mod oracle;

pub use corpus::{case_from_text, case_to_text, load_corpus, write_counterexample};
pub use diff::{
    run_case, run_concurrent_pair, run_concurrent_pair_telemetry, DiffReport, Divergence,
};
pub use gen::{generate, FuzzCase, GenParams, SigKind};
pub use minimize::minimize;
pub use oracle::{run_oracle, OracleError};
