//! FLUIDANIMATE — the PARSEC smoothed-particle-hydrodynamics simulation
//! (Table 5.1, Figs. 5.1(d)/5.2(d), and the §5.4 case study of Fig. 5.6).
//!
//! Each animation frame runs the eight phases of Fig. 5.5 (clear grid,
//! rebuild grid, init densities/forces, two density passes, force
//! computation, collisions, particle advance) — eight epochs per frame.
//! Tasks are grid cells; the density and force phases read a cell's
//! *neighbourhood*, so the particle→cell mapping (seeded and non-uniform)
//! produces irregular cross-invocation dependences and strongly imbalanced
//! task costs. The model also exposes [`Fluidanimate::force_phase_only`],
//! the FLUIDANIMATE-1 slice of Table 5.1 (the `ComputeForce` function,
//! 50.2% of runtime, LOCALWRITE inner plan).

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// Number of phases (inner loops) per animation frame (Fig. 5.5).
pub const PHASES: usize = 8;

/// The FLUIDANIMATE workload model (cell-granular addresses over the
/// per-phase field arrays).
#[derive(Debug, Clone)]
pub struct Fluidanimate {
    /// Grid side; cells = side².
    side: usize,
    /// Animation frames (epochs = 8 × frames).
    frames: usize,
    seed: u64,
}

/// Field array bases within the flat address space.
#[derive(Debug, Clone, Copy)]
enum Field {
    Positions = 0,
    Grid = 1,
    Density = 2,
    Density2 = 3,
    Force = 4,
    Velocity = 5,
}

impl Fluidanimate {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            side: scale.pick(6, 30),
            frames: scale.pick(8, 186),
            seed,
        }
    }

    /// Cells per field array.
    pub fn cells(&self) -> usize {
        self.side * self.side
    }

    fn addr(&self, field: Field, cell: usize) -> usize {
        field as usize * self.cells() + cell
    }

    /// Particle count in `cell` (seeded, highly non-uniform: the SPH fluid
    /// pools in some cells).
    fn particles(&self, cell: usize) -> u64 {
        let h = splitmix64(self.seed ^ cell as u64);
        // Quadratic skew: a few dense cells, many sparse ones.
        let base = h % 16;
        base * base / 4 + 1
    }

    /// The 4-neighbourhood of `cell` on the grid.
    fn neighbours(&self, cell: usize) -> impl Iterator<Item = usize> + '_ {
        let side = self.side;
        let (r, c) = (cell / side, cell % side);
        [
            (r.wrapping_sub(1), c),
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
        ]
        .into_iter()
        .filter(move |&(rr, cc)| rr < side && cc < side)
        .map(move |(rr, cc)| rr * side + cc)
    }

    /// Whether epoch `inv` is one of the neighbour-scatter phases the
    /// thesis parallelizes with DOANY/LOCALWRITE/DOMORE (its L4 and L6);
    /// the other six phases are plain DOALL.
    pub fn is_scatter_phase(inv: usize) -> bool {
        matches!(inv % PHASES, 3 | 5)
    }

    /// The FLUIDANIMATE-1 slice: only the `ComputeForce` phase, one
    /// invocation per frame (Table 5.1's 50.2%-of-runtime target).
    pub fn force_phase_only(&self) -> ForcePhase {
        ForcePhase {
            inner: self.clone(),
        }
    }
}

impl SimWorkload for Fluidanimate {
    fn num_invocations(&self) -> usize {
        PHASES * self.frames
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.cells()
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        let p = self.particles(iter);
        match inv % PHASES {
            0 | 2 => 200,                 // clear / init: trivial
            1 => 400 + 250 * p,           // rebuild grid
            3 | 4 => 600 + 900 * p,       // density passes
            5 => 800 + 1_600 * p * p / 4, // forces: pairwise
            6 => 300 + 350 * p,           // collisions
            _ => 300 + 300 * p,           // advance
        }
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        use Field::*;
        match inv % PHASES {
            0 => out.push((self.addr(Density, iter), AccessKind::Write)),
            1 => {
                out.push((self.addr(Positions, iter), AccessKind::Read));
                out.push((self.addr(Grid, iter), AccessKind::Write));
            }
            2 => out.push((self.addr(Force, iter), AccessKind::Write)),
            3 => {
                out.push((self.addr(Grid, iter), AccessKind::Read));
                for n in self.neighbours(iter) {
                    out.push((self.addr(Grid, n), AccessKind::Read));
                }
                out.push((self.addr(Density, iter), AccessKind::Write));
            }
            4 => {
                out.push((self.addr(Density, iter), AccessKind::Read));
                for n in self.neighbours(iter) {
                    out.push((self.addr(Density, n), AccessKind::Read));
                }
                out.push((self.addr(Density2, iter), AccessKind::Write));
            }
            5 => {
                out.push((self.addr(Density2, iter), AccessKind::Read));
                for n in self.neighbours(iter) {
                    out.push((self.addr(Density2, n), AccessKind::Read));
                }
                out.push((self.addr(Force, iter), AccessKind::Write));
            }
            6 => {
                out.push((self.addr(Force, iter), AccessKind::Read));
                out.push((self.addr(Velocity, iter), AccessKind::Write));
            }
            _ => {
                out.push((self.addr(Velocity, iter), AccessKind::Read));
                out.push((self.addr(Force, iter), AccessKind::Read));
                out.push((self.addr(Positions, iter), AccessKind::Write));
            }
        }
    }

    fn sched_cost(&self, inv: usize, iter: usize) -> u64 {
        // Only the scatter phases (the thesis' L4/L6) need DOMORE's runtime
        // scheduling; Table 5.2 reports a 21.5% scheduler/worker ratio for
        // them (the neighbour/particle enumeration is a heavy computeAddr
        // slice whose weight tracks the kernel's). The remaining phases are
        // plain DOALL dispatch.
        if Self::is_scatter_phase(inv) {
            self.iteration_cost(inv, iter) * 215 / 1000
        } else {
            60
        }
    }

    fn address_space(&self) -> Option<usize> {
        Some(6 * self.cells())
    }
}

/// The FLUIDANIMATE-1 model: the `ComputeForce` phase only.
#[derive(Debug, Clone)]
pub struct ForcePhase {
    inner: Fluidanimate,
}

impl SimWorkload for ForcePhase {
    fn num_invocations(&self) -> usize {
        self.inner.frames
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.inner.cells()
    }

    fn iteration_cost(&self, _inv: usize, iter: usize) -> u64 {
        self.inner.iteration_cost(5, iter)
    }

    fn accesses(&self, _inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        self.inner.accesses(5, iter, out);
    }

    fn sched_cost(&self, _inv: usize, iter: usize) -> u64 {
        self.inner.sched_cost(5, iter)
    }

    fn address_space(&self) -> Option<usize> {
        self.inner.address_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_domore::prelude::*;
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn eight_epochs_per_frame() {
        let f = Fluidanimate::new(Scale::Test, 11);
        assert_eq!(f.num_invocations(), 8 * 8);
    }

    #[test]
    fn task_costs_are_strongly_imbalanced() {
        let f = Fluidanimate::new(Scale::Test, 11);
        let costs: Vec<u64> = (0..f.cells()).map(|c| f.iteration_cost(5, c)).collect();
        let (min, max) = (*costs.iter().min().unwrap(), *costs.iter().max().unwrap());
        assert!(max > 5 * min, "dense cells dominate: {min}..{max}");
    }

    #[test]
    fn neighbour_chains_conflict_across_phases() {
        let f = Fluidanimate::new(Scale::Test, 11);
        let p = profile_distance(&f, 9);
        assert!(p.min_distance.is_some());
        assert!(p.conflicts > 0);
    }

    #[test]
    fn same_epoch_writes_are_disjoint() {
        let f = Fluidanimate::new(Scale::Test, 11);
        for phase in 0..PHASES {
            let mut writes = std::collections::HashSet::new();
            for t in 0..f.cells() {
                let mut v = Vec::new();
                f.accesses(phase, t, &mut v);
                for (addr, kind) in v {
                    if kind == AccessKind::Write {
                        assert!(writes.insert(addr), "phase {phase} cell {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn speccross_execution_matches_sequential() {
        let model = Fluidanimate::new(Scale::Test, 11);
        let d = profile_distance(&model, 9).min_distance;
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report =
            SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(2).spec_distance(d))
                .execute(&kernel)
                .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(report.stats.misspeculations, 0);
    }

    #[test]
    fn force_phase_runs_under_domore() {
        let kernel =
            AccessKernel::from_model(Fluidanimate::new(Scale::Test, 11).force_phase_only());
        let expected = kernel.sequential_checksum();
        DomoreRuntime::new(DomoreConfig::with_workers(3))
            .with_policy(Box::new(LocalWrite::new(
                kernel.model().address_space().unwrap(),
            )))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
    }
}
