//! Fig. 1.4 — execution with and without barriers on the motivating
//! two-loop example of Fig. 1.3.
//!
//! Reports, for the L1/L2 alternation, how much aggregate thread time is
//! lost idling at barriers versus how much the barrier-free (speculative)
//! schedule recovers — the thesis' motivating observation that "tasks from
//! before and after a barrier may overlap, resulting in better
//! performance".

use crossinvoc_bench::write_csv;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::prelude::*;

/// The Fig. 1.3 program: L1 writes A from B, L2 writes B from A, TIMESTEP
/// times; task costs vary so threads never reach barriers together.
#[derive(Debug)]
struct TwoLoop {
    n: usize,
    steps: usize,
}

impl SimWorkload for TwoLoop {
    fn num_invocations(&self) -> usize {
        2 * self.steps
    }
    fn num_iterations(&self, _inv: usize) -> usize {
        self.n
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        4_000 + crossinvoc_runtime::hash::splitmix64((inv * 97 + iter) as u64) % 4_000
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let (src, dst) = if inv.is_multiple_of(2) {
            (self.n, 0) // L1: A[i] = f(B[i], B[i+1])
        } else {
            (0, self.n) // L2: B[j] = g(A[j-1], A[j])
        };
        out.push((src + iter, AccessKind::Read));
        out.push((src + (iter + 1).min(self.n - 1), AccessKind::Read));
        out.push((dst + iter, AccessKind::Write));
    }
    fn address_space(&self) -> Option<usize> {
        Some(2 * self.n)
    }
}

fn main() {
    println!("Fig. 1.4: parallel execution with and without barriers");
    let w = TwoLoop { n: 64, steps: 100 };
    let cost = CostModel::default();
    let seq = sequential(&w, &cost).total_ns;
    println!(
        "{:>7} {:>14} {:>12} {:>16} {:>12}",
        "threads", "barrier spd", "idle %", "barrier-free spd", "idle %"
    );
    let mut rows = Vec::new();
    for threads in [4, 8, 16, 24] {
        let with_barriers = barrier(&w, threads, &cost);
        let distance = crossinvoc_workloads::kernel::profile_distance(&w, 4).min_distance;
        let params = SpecSimParams::with_threads(threads).spec_distance(distance);
        let without = speccross(&w, &params, &cost);
        println!(
            "{:>7} {:>13.2}x {:>11.1}% {:>15.2}x {:>11.1}%",
            threads,
            with_barriers.speedup_over(seq),
            100.0 * with_barriers.idle_fraction(),
            without.speedup_over(seq),
            100.0 * without.idle_fraction(),
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            threads,
            with_barriers.speedup_over(seq),
            with_barriers.idle_fraction(),
            without.speedup_over(seq),
            without.idle_fraction(),
        ));
    }
    write_csv(
        "fig1_4",
        "threads,barrier_speedup,barrier_idle,free_speedup,free_idle",
        &rows,
    );
}
