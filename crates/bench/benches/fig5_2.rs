//! Fig. 5.2 — SPECCROSS vs. pthread-barrier speedup for the eight
//! SPECCROSS benchmarks, swept over thread counts.
//!
//! Prints the §1.2 headline aggregates at 24 threads (the thesis reports a
//! geomean of 4.6× over sequential vs. 1.3× for the barrier plan at the
//! whole-program level).

use crossinvoc_bench::{geomean, speccross_pair, write_csv, THREADS};
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Fig. 5.2: SPECCROSS vs pthread barrier (speedup over sequential)");
    let mut rows = Vec::new();
    let mut at24_spec = Vec::new();
    let mut at24_barrier = Vec::new();
    for info in registry().into_iter().filter(|b| b.speccross) {
        println!("\n  ({})", info.name);
        println!(
            "{:>7} {:>16} {:>12}",
            "threads", "pthread barrier", "SPECCROSS"
        );
        for threads in THREADS {
            let pair = speccross_pair(&info, Scale::Figure, threads);
            println!(
                "{:>7} {:>15.2}x {:>11.2}x",
                threads, pair.barrier, pair.technique
            );
            rows.push(format!(
                "{},{},{:.4},{:.4}",
                info.name, threads, pair.barrier, pair.technique
            ));
            if threads == 24 {
                at24_spec.push(pair.technique);
                at24_barrier.push(pair.barrier);
            }
        }
    }
    println!("\nheadline (24 threads):");
    println!(
        "  SPECCROSS geomean over sequential: {:.2}x (thesis: 4.6x)",
        geomean(&at24_spec)
    );
    println!(
        "  barrier-plan geomean over sequential: {:.2}x (thesis: 1.3x whole-program)",
        geomean(&at24_barrier)
    );
    write_csv(
        "fig5_2",
        "benchmark,threads,barrier_speedup,speccross_speedup",
        &rows,
    );
}
