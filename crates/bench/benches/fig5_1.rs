//! Fig. 5.1 — DOMORE vs. pthread-barrier speedup for the six DOMORE
//! benchmarks, swept over thread counts.
//!
//! Also prints the §1.2 headline aggregates: DOMORE's geomean speedup over
//! the barrier plan and over sequential execution at 24 threads (the thesis
//! reports 2.1× and 3.2×).

use crossinvoc_bench::{domore_pair, geomean, write_csv, THREADS};
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Fig. 5.1: DOMORE vs pthread barrier (speedup over sequential)");
    let mut rows = Vec::new();
    let mut at24_domore = Vec::new();
    let mut at24_barrier = Vec::new();
    for info in registry().into_iter().filter(|b| b.domore) {
        println!("\n  ({})", info.name);
        println!(
            "{:>7} {:>16} {:>12}",
            "threads", "pthread barrier", "DOMORE"
        );
        for threads in THREADS {
            let pair = domore_pair(&info, Scale::Figure, threads);
            println!(
                "{:>7} {:>15.2}x {:>11.2}x",
                threads, pair.barrier, pair.technique
            );
            rows.push(format!(
                "{},{},{:.4},{:.4}",
                info.name, threads, pair.barrier, pair.technique
            ));
            if threads == 24 {
                at24_domore.push(pair.technique);
                at24_barrier.push(pair.barrier);
            }
        }
    }
    let over_seq = geomean(&at24_domore);
    let over_barrier = geomean(
        &at24_domore
            .iter()
            .zip(&at24_barrier)
            .map(|(d, b)| d / b)
            .collect::<Vec<_>>(),
    );
    println!("\nheadline (24 threads):");
    println!("  DOMORE geomean over sequential: {over_seq:.2}x (thesis: 3.2x)");
    println!("  DOMORE geomean over barrier plan: {over_barrier:.2}x (thesis: 2.1x)");
    write_csv(
        "fig5_1",
        "benchmark,threads,barrier_speedup,domore_speedup",
        &rows,
    );
}
