//! Table 5.1 — details of the evaluated benchmark programs.
//!
//! Prints the registry in the thesis' column layout and records, for each
//! program, the instance shape the harness actually runs.

use crossinvoc_bench::write_csv;
use crossinvoc_workloads::{registry, Scale};

fn main() {
    println!("Table 5.1: Details about evaluated benchmark programs");
    println!(
        "{:<16} {:<10} {:<16} {:>6}  {:<11} {:^7} {:^9}",
        "Benchmark", "Suite", "Function", "%exec", "InnerPlan", "DOMORE", "SPECCROSS"
    );
    let mut rows = Vec::new();
    for info in registry() {
        let model = info.model(Scale::Figure);
        println!(
            "{:<16} {:<10} {:<16} {:>5.1}  {:<11} {:^7} {:^9}",
            info.name,
            info.suite,
            info.function,
            info.exec_pct,
            info.inner_plan.to_string(),
            if info.domore { "X" } else { "-" },
            if info.speccross { "X" } else { "-" },
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{},{}",
            info.name,
            info.suite,
            info.function,
            info.exec_pct,
            info.inner_plan,
            info.domore,
            info.speccross,
            model.num_invocations(),
            model.total_iterations(),
        ));
    }
    write_csv(
        "table5_1",
        "benchmark,suite,function,exec_pct,inner_plan,domore,speccross,invocations,iterations",
        &rows,
    );
}
