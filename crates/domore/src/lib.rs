//! DOMORE — non-speculative cross-invocation parallelization (Chapter 3 of
//! Huang, *Automatically Exploiting Cross-Invocation Parallelism Using
//! Runtime Information*, 2013).
//!
//! DOMORE targets loop nests whose *inner* loop parallelizes cleanly but
//! whose *outer* loop carries dependences that would otherwise force a global
//! barrier after every inner-loop invocation. Instead of barriers, a
//! scheduler observes — at runtime, via shadow memory — which iterations
//! touch common memory, and forwards point-to-point *synchronization
//! conditions* to exactly the workers that need to wait. Iterations from
//! consecutive invocations overlap freely whenever they are dynamically
//! independent.
//!
//! The crate is split so that the decision logic is reusable outside real
//! threads (the discrete-event simulator consumes it too):
//!
//! * [`logic`] — the pure scheduler algorithm (Alg. 1 of the thesis):
//!   shadow-memory lookups and synchronization-condition generation.
//! * [`policy`] — iteration-to-thread assignment (§3.3.3): round-robin,
//!   LOCALWRITE-style memory partitioning, and locality-aware adaptive
//!   dispatch ([`policy::Adaptive`], selectable via [`policy::Dispatch`]).
//! * [`workload`] — the [`workload::DomoreWorkload`] trait a loop nest
//!   implements: the sequential prologue, the iteration space, the
//!   `computeAddr` address oracle (§3.3.4) and the worker body.
//! * [`runtime`] — the threaded runtime (§3.2): a scheduler thread and N
//!   worker threads connected by SPSC queues, with the `latestFinished`
//!   status array (Alg. 2).
//! * [`duplicated`] — the duplicated-scheduler variant (§3.4) in which every
//!   worker redundantly runs the scheduling loop, enabling composition with
//!   SPECCROSS.
//!
//! # Example
//!
//! ```
//! use crossinvoc_domore::prelude::*;
//! use crossinvoc_runtime::SharedSlice;
//!
//! // A toy nest: 4 invocations of 8 iterations, iteration i of each
//! // invocation increments cell i — every iteration of invocation k+1
//! // depends on the matching iteration of invocation k.
//! struct Nest {
//!     data: SharedSlice<u64>,
//! }
//! impl DomoreWorkload for Nest {
//!     fn num_invocations(&self) -> usize { 4 }
//!     fn num_iterations(&self, _inv: usize) -> usize { 8 }
//!     fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
//!         out.push(iter);
//!     }
//!     fn execute_iteration(&self, _inv: usize, iter: usize, _tid: usize) {
//!         // SAFETY: DOMORE orders the conflicting iterations across
//!         // invocations; no other iteration touches this cell.
//!         unsafe { self.data.update(iter, |v| *v += 1) };
//!     }
//! }
//!
//! let mut nest = Nest { data: SharedSlice::from_vec(vec![0; 8]) };
//! let report = DomoreRuntime::new(DomoreConfig::with_workers(3))
//!     .execute(&nest)
//!     .unwrap();
//! assert_eq!(report.stats.tasks, 32);
//! assert!(nest.data.snapshot().iter().all(|&v| v == 4));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod duplicated;
pub mod logic;
pub mod memo;
pub mod policy;
pub mod runtime;
pub mod workload;

pub use duplicated::DuplicatedScheduler;
pub use logic::{SchedulerLogic, SyncCondition};
pub use memo::{ReplayStep, ScheduleMemo};
pub use policy::{Adaptive, Chunked, Dispatch, LocalWrite, ModuloWrite, Policy, RoundRobin};
pub use runtime::{DomoreConfig, DomoreError, DomoreRuntime, ExecutionReport};
pub use workload::DomoreWorkload;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::duplicated::DuplicatedScheduler;
    pub use crate::logic::{SchedulerLogic, SyncCondition};
    pub use crate::policy::{
        Adaptive, Chunked, Dispatch, LocalWrite, ModuloWrite, Policy, RoundRobin,
    };
    pub use crate::runtime::{DomoreConfig, DomoreRuntime};
    pub use crate::workload::DomoreWorkload;
}
