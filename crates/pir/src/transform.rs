//! The automatic transformations: PIR loop nests → executable parallel
//! plans over the real runtime crates.
//!
//! * [`DomorePlan`] — the DOMORE transformation of §3.3: validate the nest,
//!   run the scheduler/worker partitioner, extract the `computeAddr` slice,
//!   and produce a plan whose execution drives
//!   [`crossinvoc_domore::DomoreRuntime`] with the interpreter as the
//!   kernel. This is the generated code of Fig. 3.7, with the structured IR
//!   playing the role of MTCG's block-level output (rules 2–3 of §3.3.2 —
//!   block creation and branch-target repair — are no-ops on structured
//!   code; rule 4's value communication becomes the per-invocation
//!   environment snapshot).
//! * [`SpecCrossPlan`] — the SPECCROSS transformation of §4.3/Alg. 5:
//!   detect a region of consecutive parallelizable invocations, verify each
//!   inner loop is barrier-free parallel, mark the speculative accesses,
//!   and produce a plan whose execution drives
//!   [`crossinvoc_speccross::SpecCrossEngine`].
//!
//! Both plans execute the *entire* program (sequential prefix, parallel
//! region, sequential suffix) and are validated in tests against sequential
//! interpretation.

use std::collections::HashSet;
use std::fmt;

use parking_lot::Mutex;

use crossinvoc_domore::prelude::*;
use crossinvoc_domore::runtime::{DomoreConfig, DomoreError, DomoreRuntime, ExecutionReport};
use crossinvoc_runtime::pool::{RegionExecutor, ScopedExecutor};
use crossinvoc_runtime::signature::{AccessKind, AccessSignature, RangeSignature};
use crossinvoc_speccross::engine::{SpecConfig, SpecCrossEngine, SpecError, SpecReport};
use crossinvoc_speccross::profile::ProfileReport;
use crossinvoc_speccross::workload::{AccessRecorder, SpecWorkload};

use crate::analysis::collect_accesses;
use crate::elide::ElisionPlan;
use crate::interp::{Env, Interp, Memory, TraceEvent};
use crate::ir::{ArrayId, Expr, Program, Stmt, StmtId};
use crate::pdg::Pdg;
use crate::scc::Partition;
use crate::slice::{compute_addr_slice, AddrSlice, AddrTarget, SliceError};
use crate::techniques::{classify_loop, Technique};

/// Why a transformation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The designated statement is not a `For` loop.
    NotALoop(StmtId),
    /// The inner loop is not the final statement of the outer loop's body
    /// (sequential code *after* the parallel invocation would race with
    /// overlapped iterations).
    UnsupportedShape,
    /// `computeAddr` extraction failed (§3.3.4's abort conditions).
    Slice(SliceError),
    /// The partitioner pulled inner-loop body statements to the scheduler:
    /// the body participates in a cycle with the sequential code (the
    /// Fig. 4.1 pathology) and DOMORE cannot pipeline it.
    InnerBodyOnScheduler(StmtId),
    /// The outer loop's sequential code conflicts with worker memory, so
    /// overlapping it with trailing invocations would race.
    PrologueConflictsWithWorkers(ArrayId),
    /// An inner loop of the SPECCROSS region is not barrier-free parallel.
    InnerNotParallelizable(StmtId),
    /// A statement between the region's parallel loops is not a pure scalar
    /// assignment and cannot be privatized/replicated (§4.3).
    RegionPrologueNotPure(StmtId),
    /// The region contains no parallel loops.
    EmptyRegion,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotALoop(s) => write!(f, "statement #{} is not a loop", s.0),
            TransformError::UnsupportedShape => {
                write!(f, "inner loop must be the last statement of the outer body")
            }
            TransformError::Slice(e) => write!(f, "computeAddr extraction failed: {e}"),
            TransformError::InnerBodyOnScheduler(s) => write!(
                f,
                "inner-loop statement #{} is forced onto the scheduler",
                s.0
            ),
            TransformError::PrologueConflictsWithWorkers(a) => write!(
                f,
                "sequential code and workers both touch array #{} with a write",
                a.0
            ),
            TransformError::InnerNotParallelizable(s) => {
                write!(f, "inner loop #{} carries dependences", s.0)
            }
            TransformError::RegionPrologueNotPure(s) => write!(
                f,
                "statement #{} between parallel loops is not a pure scalar assignment",
                s.0
            ),
            TransformError::EmptyRegion => write!(f, "region contains no parallel loops"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<SliceError> for TransformError {
    fn from(e: SliceError) -> Self {
        TransformError::Slice(e)
    }
}

fn arrays_written(program: &Program, roots: &[StmtId]) -> HashSet<ArrayId> {
    collect_accesses(program, roots)
        .into_iter()
        .filter(|a| a.kind == crossinvoc_runtime::signature::AccessKind::Write)
        .map(|a| a.array)
        .collect()
}

fn arrays_touched(program: &Program, roots: &[StmtId]) -> HashSet<ArrayId> {
    collect_accesses(program, roots)
        .into_iter()
        .map(|a| a.array)
        .collect()
}

/// Splits the top-level body around a statement: `(prefix, suffix)`.
fn split_body(program: &Program, pivot: StmtId) -> (Vec<StmtId>, Vec<StmtId>) {
    let mut prefix = Vec::new();
    let mut suffix = Vec::new();
    let mut seen = false;
    for &s in program.body() {
        if s == pivot {
            seen = true;
        } else if seen {
            suffix.push(s);
        } else {
            prefix.push(s);
        }
    }
    (prefix, suffix)
}

// ---------------------------------------------------------------------------
// DOMORE
// ---------------------------------------------------------------------------

/// A validated DOMORE parallelization of one loop nest.
#[derive(Debug)]
pub struct DomorePlan<'p> {
    program: &'p Program,
    outer: StmtId,
    inner: StmtId,
    /// Outer-body statements before the inner loop (the sequential
    /// prologue, scheduler-side).
    prologue: Vec<StmtId>,
    /// The `computeAddr` slice.
    slice: AddrSlice,
    /// The §3.3.1 partition (kept for inspection; the plan requires the
    /// whole inner body on the worker side).
    partition: Partition,
}

/// Per-invocation context captured by the scheduler's prologue.
#[derive(Debug, Clone)]
struct InvCtx {
    env: Env,
    from: i64,
    to: i64,
}

impl<'p> DomorePlan<'p> {
    /// Builds the DOMORE plan for the nest `outer`/`inner` of `program`.
    ///
    /// `outer` must be a top-level `For`; `inner` must be the final
    /// statement of its body and itself a `For`.
    ///
    /// # Errors
    ///
    /// Any of the [`TransformError`] conditions: malformed nest, partition
    /// pulling the body onto the scheduler, `computeAddr` abort, or a
    /// prologue/worker memory conflict.
    pub fn build(
        program: &'p Program,
        outer: StmtId,
        inner: StmtId,
    ) -> Result<DomorePlan<'p>, TransformError> {
        let Stmt::For {
            body: outer_body, ..
        } = program.stmt(outer)
        else {
            return Err(TransformError::NotALoop(outer));
        };
        let Stmt::For {
            body: inner_body, ..
        } = program.stmt(inner)
        else {
            return Err(TransformError::NotALoop(inner));
        };
        if outer_body.last() != Some(&inner) {
            return Err(TransformError::UnsupportedShape);
        }
        let prologue: Vec<StmtId> = outer_body[..outer_body.len() - 1].to_vec();
        // §3.3.1: the partition must leave the entire inner body on the
        // worker side, or the nest cannot be pipelined.
        let pdg = Pdg::build(program, outer);
        let partition = Partition::scheduler_worker(program, &pdg, inner);
        for &s in &program.subtrees(inner_body) {
            if partition.scheduler.contains(&s) {
                return Err(TransformError::InnerBodyOnScheduler(s));
            }
        }
        // §3.3.4: extract computeAddr.
        let region_writes = arrays_written(program, &program.subtree(outer));
        let slice = compute_addr_slice(program, inner, &region_writes)?;
        // Overlap soundness: the sequential prologue of invocation k+1 runs
        // while workers still execute invocation k, so the two must not
        // conflict on any array.
        let worker_touched = arrays_touched(program, inner_body);
        let worker_written = arrays_written(program, inner_body);
        let prologue_touched = arrays_touched(program, &prologue);
        let prologue_written = arrays_written(program, &prologue);
        for &a in &prologue_written {
            if worker_touched.contains(&a) {
                return Err(TransformError::PrologueConflictsWithWorkers(a));
            }
        }
        for &a in &worker_written {
            if prologue_touched.contains(&a) {
                return Err(TransformError::PrologueConflictsWithWorkers(a));
            }
        }
        Ok(DomorePlan {
            program,
            outer,
            inner,
            prologue,
            slice,
            partition,
        })
    }

    /// The extracted `computeAddr` slice.
    pub fn slice(&self) -> &AddrSlice {
        &self.slice
    }

    /// The sequential prologue statements (outer-loop body before the inner
    /// loop), scheduler-side.
    pub fn prologue_stmts(&self) -> &[StmtId] {
        &self.prologue
    }

    /// The inner loop's body statement sequence (worker-side).
    pub fn inner_body(&self) -> &[StmtId] {
        match self.program.stmt(self.inner) {
            Stmt::For { body, .. } => body,
            _ => unreachable!("validated at build time"),
        }
    }

    /// The inner loop's induction variable.
    pub fn inner_iv(&self) -> crate::ir::VarId {
        match self.program.stmt(self.inner) {
            Stmt::For { var, .. } => *var,
            _ => unreachable!("validated at build time"),
        }
    }

    /// The §3.3.1 scheduler/worker partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Executes the whole program — sequential prefix, the nest under the
    /// threaded DOMORE runtime with `workers` workers, sequential suffix.
    ///
    /// # Errors
    ///
    /// Propagates [`DomoreError`] from the runtime (zero workers).
    pub fn execute(
        &self,
        mem: &mut Memory,
        workers: usize,
    ) -> Result<ExecutionReport, DomoreError> {
        self.execute_with(mem, DomoreConfig::with_workers(workers))
    }

    /// Like [`DomorePlan::execute`], but under a caller-supplied runtime
    /// configuration (fault plans, watchdog, schedule memoization toggle —
    /// the knobs the differential fuzzer sweeps).
    ///
    /// # Errors
    ///
    /// Propagates [`DomoreError`] from the runtime.
    pub fn execute_with(
        &self,
        mem: &mut Memory,
        config: DomoreConfig,
    ) -> Result<ExecutionReport, DomoreError> {
        self.execute_with_on(mem, config, &ScopedExecutor)
    }

    /// Like [`DomorePlan::execute_with`], but running the worker gang on a
    /// caller-supplied executor — a shared
    /// [`crossinvoc_runtime::pool::WorkerPool`] when many regions run
    /// concurrently in region-server mode.
    ///
    /// # Errors
    ///
    /// Propagates [`DomoreError`] from the runtime.
    pub fn execute_with_on(
        &self,
        mem: &mut Memory,
        config: DomoreConfig,
        exec: &dyn RegionExecutor,
    ) -> Result<ExecutionReport, DomoreError> {
        let interp = Interp::new(self.program);
        let mut env = vec![0; self.program.vars().len()];
        let (prefix, suffix) = split_body(self.program, self.outer);
        // SAFETY: exclusive &mut Memory; single-threaded here.
        unsafe { interp.exec_stmts(&prefix, &mut env, mem, &mut None) };

        let Stmt::For {
            var: outer_iv,
            from,
            to,
            ..
        } = self.program.stmt(self.outer)
        else {
            unreachable!("validated at build time");
        };
        let outer_from = interp.eval(from, &env);
        let outer_to = interp.eval(to, &env);
        let num_inv = (outer_to - outer_from).max(0) as usize;

        let adapter = DomoreAdapter {
            plan: self,
            interp,
            mem: &*mem,
            outer_iv: outer_iv.0,
            outer_from,
            num_inv,
            sched_env: Mutex::new(env.clone()),
            inv_ctx: (0..num_inv).map(|_| Mutex::new(None)).collect(),
        };
        let report = DomoreRuntime::new(config).execute_on(&adapter, exec)?;

        // Suffix: the outer IV holds its final value, as after a real loop.
        let mut env = adapter.sched_env.into_inner();
        env[outer_iv.0] = outer_to.max(outer_from);
        // SAFETY: all workers joined inside `execute`; exclusive again.
        unsafe { interp.exec_stmts(&suffix, &mut env, mem, &mut None) };
        Ok(report)
    }

    /// Runs the program sequentially (the validation baseline).
    pub fn execute_sequential(&self, mem: &mut Memory) {
        Interp::new(self.program).run(mem);
    }
}

/// Adapts a [`DomorePlan`] to the DOMORE runtime's workload contract.
struct DomoreAdapter<'a, 'p> {
    plan: &'a DomorePlan<'p>,
    interp: Interp<'p>,
    mem: &'a Memory,
    outer_iv: usize,
    outer_from: i64,
    num_inv: usize,
    /// Scheduler-side persistent environment (scheduler thread only).
    sched_env: Mutex<Env>,
    /// Per-invocation context published by `prologue`, consumed by workers
    /// (the value communication of MTCG rule 4).
    inv_ctx: Vec<Mutex<Option<InvCtx>>>,
}

impl<'a, 'p> DomoreAdapter<'a, 'p> {
    fn inner_parts(&self) -> (usize, &'p [StmtId], &'p Expr, &'p Expr) {
        let Stmt::For {
            var,
            from,
            to,
            body,
        } = self.plan.program.stmt(self.plan.inner)
        else {
            unreachable!("validated at build time");
        };
        (var.0, body, from, to)
    }

    fn ctx(&self, inv: usize) -> InvCtx {
        self.inv_ctx[inv]
            .lock()
            .clone()
            .expect("runtime dispatches iterations only after the invocation's prologue")
    }
}

impl DomoreWorkload for DomoreAdapter<'_, '_> {
    fn num_invocations(&self) -> usize {
        self.num_inv
    }

    fn prologue(&self, inv: usize) {
        let (_, _, from, to) = self.inner_parts();
        let mut env = self.sched_env.lock();
        env[self.outer_iv] = self.outer_from + inv as i64;
        // SAFETY: prologue arrays are disjoint from worker arrays
        // (validated at build), so racing trailing invocations is safe.
        unsafe {
            self.interp
                .exec_stmts(&self.plan.prologue, &mut env, self.mem, &mut None)
        };
        let lo = self.interp.eval(from, &env);
        let hi = self.interp.eval(to, &env);
        *self.inv_ctx[inv].lock() = Some(InvCtx {
            env: env.clone(),
            from: lo,
            to: hi,
        });
    }

    fn num_iterations(&self, inv: usize) -> usize {
        let ctx = self.ctx(inv);
        (ctx.to - ctx.from).max(0) as usize
    }

    fn touched_addrs(&self, inv: usize, iter: usize, out: &mut Vec<usize>) {
        let (inner_iv, _, _, _) = self.inner_parts();
        let mut ctx = self.ctx(inv);
        ctx.env[inner_iv] = ctx.from + iter as i64;
        // SAFETY: the slice is pure and reads only region-read-only arrays
        // (enforced by `compute_addr_slice`).
        unsafe {
            self.interp
                .exec_stmts(&self.plan.slice.stmts, &mut ctx.env, self.mem, &mut None)
        };
        let program = self.plan.program;
        for target in &self.plan.slice.targets {
            match target {
                AddrTarget::Element { array, index } => {
                    let idx = self.interp.eval(index, &ctx.env);
                    if idx >= 0 && (idx as usize) < program.arrays()[array.0].len {
                        out.push(program.array_base(*array) + idx as usize);
                    }
                }
                AddrTarget::CallElement { array, selector } => {
                    let len = program.arrays()[array.0].len as i64;
                    let sel = selector
                        .as_ref()
                        .map_or(0, |s| self.interp.eval(s, &ctx.env));
                    out.push(program.array_base(*array) + sel.rem_euclid(len.max(1)) as usize);
                }
            }
        }
    }

    fn execute_iteration(&self, inv: usize, iter: usize, _tid: usize) {
        let (inner_iv, body, _, _) = self.inner_parts();
        let mut ctx = self.ctx(inv);
        ctx.env[inner_iv] = ctx.from + iter as i64;
        // SAFETY: the DOMORE runtime orders every pair of iterations whose
        // `touched_addrs` sets intersect; `touched_addrs` covers all the
        // body's shared accesses (slice targets are a superset).
        unsafe {
            self.interp
                .exec_stmts(body, &mut ctx.env, self.mem, &mut None)
        };
    }

    fn prologue_is_replicable(&self) -> bool {
        self.plan.prologue.is_empty()
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.plan.program.memory_len())
    }
}

// ---------------------------------------------------------------------------
// SPECCROSS
// ---------------------------------------------------------------------------

/// A validated SPECCROSS parallelization of a region of consecutive
/// parallel loop invocations (the code regions of Fig. 4.5).
#[derive(Debug)]
pub struct SpecCrossPlan<'p> {
    program: &'p Program,
    outer: StmtId,
    /// The region schedule: for each outer iteration, these items run in
    /// order. Scalar assignments accumulate into the epoch environment;
    /// each loop is one epoch.
    items: Vec<RegionItem>,
    /// Inner loops (epoch sources), in body order.
    loops: Vec<StmtId>,
    /// Arrays whose accesses must be reported to the speculation engine
    /// (written somewhere in the region).
    watched: HashSet<ArrayId>,
    /// Per-loop static conflict-freedom verdicts (the `pir::elide`
    /// analysis), threaded into the engine as a proven-epoch mask.
    elision: ElisionPlan,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RegionItem {
    Scalar(StmtId),
    Loop(StmtId),
}

impl<'p> SpecCrossPlan<'p> {
    /// Builds the SPECCROSS plan for the top-level outer loop `outer`,
    /// whose body must consist of parallelizable `For` loops optionally
    /// separated by pure scalar assignments (§4.3's candidate test).
    ///
    /// # Errors
    ///
    /// * [`TransformError::InnerNotParallelizable`] if any inner loop
    ///   carries intra-invocation dependences.
    /// * [`TransformError::RegionPrologueNotPure`] if inter-loop code is
    ///   not a scalar assignment.
    /// * [`TransformError::EmptyRegion`] if there is no inner loop.
    pub fn build(program: &'p Program, outer: StmtId) -> Result<SpecCrossPlan<'p>, TransformError> {
        let Stmt::For {
            body: outer_body, ..
        } = program.stmt(outer)
        else {
            return Err(TransformError::NotALoop(outer));
        };
        let mut items = Vec::new();
        let mut loops = Vec::new();
        for &s in outer_body {
            match program.stmt(s) {
                Stmt::For { .. } => {
                    // Each inner loop must be barrier-free parallel
                    // within one invocation (DOALL after classification).
                    let pdg = Pdg::build(program, s);
                    let applicability = classify_loop(program, &pdg);
                    if applicability.best() != Technique::Doall {
                        return Err(TransformError::InnerNotParallelizable(s));
                    }
                    items.push(RegionItem::Loop(s));
                    loops.push(s);
                }
                Stmt::Assign { .. } => items.push(RegionItem::Scalar(s)),
                _ => return Err(TransformError::RegionPrologueNotPure(s)),
            }
        }
        if loops.is_empty() {
            return Err(TransformError::EmptyRegion);
        }
        let watched = arrays_written(program, &program.subtree(outer));
        let Stmt::For { var: outer_iv, .. } = program.stmt(outer) else {
            unreachable!("validated above");
        };
        let elision = crate::elide::analyze(program, &items, &loops, &watched, *outer_iv);
        Ok(SpecCrossPlan {
            program,
            outer,
            items,
            loops,
            watched,
            elision,
        })
    }

    /// The inner loops forming the region's epochs (per outer iteration).
    pub fn epoch_loops(&self) -> &[StmtId] {
        &self.loops
    }

    /// Arrays whose accesses are instrumented (`spec_access` insertion,
    /// Alg. 5).
    pub fn watched_arrays(&self) -> &HashSet<ArrayId> {
        &self.watched
    }

    /// The static conflict-freedom analysis of the region's loops: which
    /// accesses (and whole loops) are proven disjoint across all compared
    /// task pairs. The engine consults this — gated by
    /// [`SpecConfig::elide`] — to skip signature generation and checker
    /// admission for proven epochs.
    pub fn elision(&self) -> &ElisionPlan {
        &self.elision
    }

    /// Profiles the region's minimum cross-epoch dependence distance
    /// (§4.4). `mem` should hold the training input; profiling executes
    /// the program's prefix and the whole region once.
    pub fn profile(&self, mem: &mut Memory, window_epochs: u32) -> ProfileReport {
        let (base_env, _) = self.run_prefix(mem);
        let adapter = self.make_adapter(&*mem, base_env);
        SpecCrossEngine::<RangeSignature>::profile(&adapter, window_epochs)
    }

    /// Executes the whole program: sequential prefix, the region under the
    /// SPECCROSS engine, sequential suffix.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the engine.
    pub fn execute(&self, mem: &mut Memory, config: SpecConfig) -> Result<SpecReport, SpecError> {
        self.execute_sig::<RangeSignature>(mem, config)
    }

    /// Like [`SpecCrossPlan::execute`], but with a caller-chosen access
    /// signature type (e.g. `BloomSignature`, whose false positives the
    /// differential fuzzer must tolerate without state divergence).
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the engine.
    pub fn execute_sig<S: AccessSignature>(
        &self,
        mem: &mut Memory,
        config: SpecConfig,
    ) -> Result<SpecReport, SpecError> {
        self.execute_sig_on::<S>(mem, config, &ScopedExecutor)
    }

    /// Like [`SpecCrossPlan::execute_sig`], but running the region's gangs
    /// on a caller-supplied executor — a shared
    /// [`crossinvoc_runtime::pool::WorkerPool`] when many regions run
    /// concurrently in region-server mode.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the engine.
    pub fn execute_sig_on<S: AccessSignature>(
        &self,
        mem: &mut Memory,
        config: SpecConfig,
        exec: &dyn RegionExecutor,
    ) -> Result<SpecReport, SpecError> {
        let (base_env, mut exit_env) = self.run_prefix(mem);
        let report = {
            let adapter = self.make_adapter(&*mem, base_env);
            SpecCrossEngine::<S>::new(config).execute_on(&adapter, exec)?
        };
        let (_, suffix) = split_body(self.program, self.outer);
        // SAFETY: the engine joined all workers; this thread is exclusive.
        unsafe { Interp::new(self.program).exec_stmts(&suffix, &mut exit_env, mem, &mut None) };
        Ok(report)
    }

    /// Executes the whole program with the region under *non-speculative*
    /// barriers — the conventional plan the thesis compares against.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the engine.
    pub fn execute_with_barriers(
        &self,
        mem: &mut Memory,
        config: SpecConfig,
    ) -> Result<SpecReport, SpecError> {
        self.execute_with_barriers_on(mem, config, &ScopedExecutor)
    }

    /// Like [`SpecCrossPlan::execute_with_barriers`], but running the worker
    /// gang on a caller-supplied executor (see
    /// [`SpecCrossPlan::execute_sig_on`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from the engine.
    pub fn execute_with_barriers_on(
        &self,
        mem: &mut Memory,
        config: SpecConfig,
        exec: &dyn RegionExecutor,
    ) -> Result<SpecReport, SpecError> {
        let (base_env, mut exit_env) = self.run_prefix(mem);
        let report = {
            let adapter = self.make_adapter(&*mem, base_env);
            SpecCrossEngine::<RangeSignature>::new(config)
                .execute_with_barriers_on(&adapter, exec)?
        };
        let (_, suffix) = split_body(self.program, self.outer);
        // SAFETY: the engine joined all workers; this thread is exclusive.
        unsafe { Interp::new(self.program).exec_stmts(&suffix, &mut exit_env, mem, &mut None) };
        Ok(report)
    }

    /// Executes the prefix and region *sequentially* (epoch-major, task
    /// order — exactly program order), capturing the instrumented accesses
    /// each task reports, per epoch. The suffix is not run; pass a scratch
    /// memory. This is the state-capture hook the differential fuzzer uses
    /// to replay a region through the deterministic simulators.
    pub fn record_region(&self, mem: &mut Memory) -> Vec<Vec<Vec<(usize, AccessKind)>>> {
        let (base_env, _) = self.run_prefix(mem);
        let adapter = self.make_adapter(&*mem, base_env);
        let mut epochs = Vec::with_capacity(adapter.num_epochs());
        for epoch in 0..adapter.num_epochs() {
            let mut tasks = Vec::with_capacity(adapter.num_tasks(epoch));
            for task in 0..adapter.num_tasks(epoch) {
                let mut rec = CollectRecorder::default();
                adapter.execute_task(epoch, task, 0, &mut rec);
                tasks.push(rec.0);
            }
            epochs.push(tasks);
        }
        epochs
    }

    /// Runs the program sequentially (the validation baseline).
    pub fn execute_sequential(&self, mem: &mut Memory) {
        Interp::new(self.program).run(mem);
    }

    /// Runs the sequential prefix; returns the environment at region entry
    /// and the environment for the program suffix.
    fn run_prefix(&self, mem: &mut Memory) -> (Env, Env) {
        let interp = Interp::new(self.program);
        let mut env = vec![0; self.program.vars().len()];
        let (prefix, _) = split_body(self.program, self.outer);
        // SAFETY: exclusive &mut Memory.
        unsafe { interp.exec_stmts(&prefix, &mut env, mem, &mut None) };
        let Stmt::For {
            var: outer_iv,
            from,
            to,
            ..
        } = self.program.stmt(self.outer)
        else {
            unreachable!("validated at build time");
        };
        let outer_from = interp.eval(from, &env);
        let outer_to = interp.eval(to, &env);
        let mut exit_env = env.clone();
        exit_env[outer_iv.0] = outer_to.max(outer_from);
        (env, exit_env)
    }

    fn make_adapter<'a>(&'a self, mem: &'a Memory, base_env: Env) -> SpecAdapter<'a, 'p> {
        let Stmt::For {
            var: outer_iv,
            from,
            to,
            ..
        } = self.program.stmt(self.outer)
        else {
            unreachable!("validated at build time");
        };
        let interp = Interp::new(self.program);
        let outer_from = interp.eval(from, &base_env);
        let outer_to = interp.eval(to, &base_env);
        SpecAdapter {
            plan: self,
            interp,
            mem,
            base_env,
            outer_iv: outer_iv.0,
            outer_from,
            num_outer: (outer_to - outer_from).max(0) as usize,
            proven: self.elision.proven_mask(),
        }
    }
}

/// Collects reported accesses verbatim (the `record_region` sink).
#[derive(Default)]
struct CollectRecorder(Vec<(usize, AccessKind)>);

impl AccessRecorder for CollectRecorder {
    fn record(&mut self, addr: usize, kind: AccessKind) {
        self.0.push((addr, kind));
    }
}

/// Adapts a [`SpecCrossPlan`] to the SPECCROSS engine's workload contract.
struct SpecAdapter<'a, 'p> {
    plan: &'a SpecCrossPlan<'p>,
    interp: Interp<'p>,
    mem: &'a Memory,
    base_env: Env,
    outer_iv: usize,
    outer_from: i64,
    num_outer: usize,
    /// Per-ordinal proven mask from the elision analysis.
    proven: Vec<bool>,
}

impl<'a, 'p> SpecAdapter<'a, 'p> {
    /// Environment at the entry of epoch `epoch`: the outer IV plus all
    /// scalar assignments preceding the epoch's loop in the body —
    /// recomputed deterministically, which is the "privatize and
    /// duplicate" of §4.3.
    fn epoch_env(&self, epoch: usize) -> (Env, StmtId) {
        let per_outer = self.plan.loops.len();
        let outer_iter = epoch / per_outer;
        let loop_ordinal = epoch % per_outer;
        let mut env = self.base_env.clone();
        env[self.outer_iv] = self.outer_from + outer_iter as i64;
        let mut seen_loops = 0;
        for item in &self.plan.items {
            match item {
                RegionItem::Scalar(s) => {
                    // Pure scalar assignment: no memory access possible.
                    // SAFETY: no memory is touched.
                    unsafe {
                        self.interp.exec_stmts(
                            std::slice::from_ref(s),
                            &mut env,
                            self.mem,
                            &mut None,
                        )
                    };
                }
                RegionItem::Loop(l) => {
                    if seen_loops == loop_ordinal {
                        return (env, *l);
                    }
                    seen_loops += 1;
                }
            }
        }
        unreachable!("epoch ordinal within region");
    }
}

impl SpecWorkload for SpecAdapter<'_, '_> {
    type State = Vec<i64>;

    fn num_epochs(&self) -> usize {
        self.num_outer * self.plan.loops.len()
    }

    fn num_tasks(&self, epoch: usize) -> usize {
        let (env, l) = self.epoch_env(epoch);
        let Stmt::For { from, to, .. } = self.plan.program.stmt(l) else {
            unreachable!("epoch sources are loops");
        };
        (self.interp.eval(to, &env) - self.interp.eval(from, &env)).max(0) as usize
    }

    fn execute_task(
        &self,
        epoch: usize,
        task: usize,
        _tid: usize,
        recorder: &mut dyn AccessRecorder,
    ) {
        let (mut env, l) = self.epoch_env(epoch);
        let Stmt::For {
            var, from, body, ..
        } = self.plan.program.stmt(l)
        else {
            unreachable!("epoch sources are loops");
        };
        let lo = self.interp.eval(from, &env);
        env[var.0] = lo + task as i64;
        let program = self.plan.program;
        let watched = &self.plan.watched;
        let mut sink = |e: TraceEvent| {
            // Alg. 5: only accesses to region-written arrays participate in
            // cross-invocation dependences.
            let array_of = |addr: usize| {
                watched.iter().any(|&a| {
                    let base = program.array_base(a);
                    addr >= base && addr < base + program.arrays()[a.0].len
                })
            };
            if array_of(e.addr) {
                recorder.record(e.addr, e.kind);
            }
        };
        let mut sink: Option<&mut dyn FnMut(TraceEvent)> = Some(&mut sink);
        // SAFETY: same-epoch tasks are independent (DOALL-verified at
        // build); cross-epoch conflicts are detected and rolled back by the
        // engine, which re-executes from a quiesced checkpoint.
        unsafe { self.interp.exec_stmts(body, &mut env, self.mem, &mut sink) };
    }

    fn snapshot(&self) -> Vec<i64> {
        // SAFETY: the engine calls this only at quiesced rendezvous.
        unsafe { self.mem.snapshot_quiesced() }
    }

    fn restore(&self, state: &Vec<i64>) {
        // SAFETY: the engine calls this only during quiesced recovery.
        unsafe { self.mem.restore_quiesced(state) };
    }

    fn epoch_is_proven(&self, epoch: usize) -> bool {
        self.proven[epoch % self.plan.loops.len()]
    }
}
