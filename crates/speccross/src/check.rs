//! The pure misspeculation-detection algorithm (§4.2.1).
//!
//! Barrier semantics demand that every task of epoch *e−1* happen before
//! every task of epoch *e*. SPECCROSS lets epochs overlap and detects, after
//! the fact, whether any pair of tasks whose relative order speculation may
//! have changed actually conflicted. A pair needs checking exactly when
//!
//! 1. the tasks ran on different workers,
//! 2. their epochs differ (same-epoch tasks are independent by the inner
//!    loop's DOALL property — the key saving over TM-style schemes,
//!    Fig. 4.4), and
//! 3. they *overlapped*: the earlier-epoch task had not retired when the
//!    later-epoch task began (observed through the position snapshot the
//!    later task records at start; Fig. 4.6's timing diagram).
//!
//! [`CheckerState::admit`] realises this symmetrically: an arriving task is
//! compared both against logged earlier-epoch tasks that overlapped it, and
//! against logged later-epoch tasks it overlapped (covering stragglers whose
//! requests arrive late).
//!
//! The structure is pure — no threads, no channels — so the threaded checker
//! (`engine`), the profiler and the discrete-event simulator all share it.

use std::collections::VecDeque;

use crossinvoc_runtime::signature::AccessSignature;
use crossinvoc_runtime::ThreadId;

use crate::position::Position;

/// One task's checking request: who ran it, where, what it touched, and the
/// position every other worker was at when it started.
#[derive(Debug, Clone)]
pub struct CheckRequest<S> {
    /// Worker that executed the task.
    pub tid: ThreadId,
    /// The task's position (epoch, per-thread task number).
    pub pos: Position,
    /// Positions of *all* workers observed at task start (`snapshot[tid]`
    /// is the task's own slot and is ignored).
    pub snapshot: Box<[Position]>,
    /// The task's access signature.
    pub sig: S,
}

/// A detected dependence violation between two overlapping tasks from
/// different epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Worker/position of the earlier-epoch task.
    pub earlier: (ThreadId, Position),
    /// Worker/position of the later-epoch task.
    pub later: (ThreadId, Position),
}

impl Conflict {
    /// Epoch of the earlier participant of *this* conflict.
    ///
    /// Note that [`CheckerState::admit`] returns the first conflict in scan
    /// order, so when several logged tasks conflict with one request this is
    /// **not** necessarily the globally smallest conflicting epoch. That is
    /// fine for recovery: the engine rolls back to the last *checkpoint*,
    /// and a checkpoint only completes after the checker has drained — so
    /// every conflict still live involves epochs after that checkpoint and
    /// the rollback target is the same whichever conflict is reported
    /// first. The value is informational (which pair tripped), not the
    /// recovery bound.
    pub fn earliest_epoch(&self) -> u32 {
        self.earlier.1.epoch
    }
}

/// One epoch's slice of a worker's signature log, summarized by the union
/// of its members' signatures.
///
/// The conflict test is monotone under signature union (see
/// [`AccessSignature::merge`]): a request disjoint from the aggregate is
/// disjoint from every member, so the whole bucket can be skipped with one
/// comparison instead of one per member.
#[derive(Debug)]
struct EpochBucket<S> {
    epoch: u32,
    /// Union of every member signature (empty members contribute nothing).
    agg: S,
    /// Members in arrival (= position) order; never empty.
    entries: Vec<CheckRequest<S>>,
}

/// Append-only signature log plus the conflict test (the Signature Log of
/// Fig. 4.8 merged with `check_request` of Fig. 4.7).
///
/// Each worker's log is bucketed by epoch and every bucket carries an
/// *aggregate* signature — the union of its members'. [`CheckerState::admit`]
/// tests an arriving request against a bucket's aggregate first and skips
/// the whole bucket when disjoint, which turns the common no-conflict case
/// from O(in-flight tasks) into O(in-flight epochs) comparisons.
#[derive(Debug)]
pub struct CheckerState<S> {
    /// Per-worker epoch buckets, ordered by epoch (workers log in order).
    logs: Vec<VecDeque<EpochBucket<S>>>,
    comparisons: u64,
    epoch_skips: u64,
    /// Whether `admit` may use the per-bucket aggregate short-circuit.
    /// Disabling it forces the member-by-member scan — verdicts must be
    /// identical either way (the differential fuzzer exercises both).
    aggregates: bool,
}

impl<S: AccessSignature> CheckerState<S> {
    /// Creates an empty checker for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self::with_aggregates(num_workers, true)
    }

    /// Creates an empty checker, choosing whether the per-epoch aggregate
    /// fast path is `enabled`. With it disabled every request is compared
    /// member-by-member; conflict verdicts are unchanged, only the
    /// comparison counts differ.
    pub fn with_aggregates(num_workers: usize, enabled: bool) -> Self {
        Self {
            logs: (0..num_workers).map(|_| VecDeque::new()).collect(),
            comparisons: 0,
            epoch_skips: 0,
            aggregates: enabled,
        }
    }

    /// Number of signature comparisons performed so far (reported in the
    /// checking-overhead discussion of §5.2). Aggregate tests count as one
    /// comparison each.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of whole-epoch buckets skipped because the request was
    /// disjoint from the bucket's aggregate signature.
    pub fn epoch_skips(&self) -> u64 {
        self.epoch_skips
    }

    /// Total logged requests.
    pub fn logged(&self) -> usize {
        self.logs
            .iter()
            .map(|buckets| buckets.iter().map(|b| b.entries.len()).sum::<usize>())
            .sum()
    }

    /// Logs `req` and tests it against every logged task it may have raced
    /// with.
    ///
    /// **Contract:** returns the *first* conflict in scan order — workers in
    /// ascending id, each worker's log newest-to-oldest — not the conflict
    /// with the globally earliest epoch. See [`Conflict::earliest_epoch`]
    /// for why recovery does not depend on which conflict is reported.
    ///
    /// **Invariant:** one worker's requests must be admitted in position
    /// order with monotone snapshots. The engine guarantees both: a worker
    /// retires tasks in order over a FIFO queue, and the progress board it
    /// snapshots only moves forward.
    ///
    /// Empty signatures are logged but never compared (they cannot conflict).
    pub fn admit(&mut self, req: CheckRequest<S>) -> Option<Conflict> {
        let mut found = None;
        if !req.sig.is_empty() {
            'outer: for (other_tid, buckets) in self.logs.iter().enumerate() {
                if other_tid == req.tid {
                    continue;
                }
                for bucket in buckets.iter().rev() {
                    match bucket.epoch.cmp(&req.pos.epoch) {
                        // Same epoch: independent by the DOALL property.
                        std::cmp::Ordering::Equal => continue,
                        std::cmp::Ordering::Greater => {
                            // `req` is the earlier-epoch straggler: a logged
                            // task raced it iff `req` had not retired when
                            // the logged task began. Snapshots are monotone
                            // within a worker's log, so if even the oldest
                            // member observed `req` retired, none raced.
                            let oldest = &bucket.entries[0];
                            if req.pos < oldest.snapshot[req.tid] {
                                continue;
                            }
                            if self.aggregates {
                                self.comparisons += 1;
                                if !bucket.agg.conflicts_with(&req.sig) {
                                    self.epoch_skips += 1;
                                    continue;
                                }
                            }
                            for logged in bucket.entries.iter().rev() {
                                if req.pos >= logged.snapshot[req.tid] {
                                    self.comparisons += 1;
                                    if logged.sig.conflicts_with(&req.sig) {
                                        found = Some(Conflict {
                                            earlier: (req.tid, req.pos),
                                            later: (other_tid, logged.pos),
                                        });
                                        break 'outer;
                                    }
                                }
                            }
                        }
                        std::cmp::Ordering::Less => {
                            // `logged` tasks are earlier-epoch: they raced
                            // `req` iff not yet retired when `req` started.
                            let snap = req.snapshot[other_tid];
                            let newest = bucket
                                .entries
                                .last()
                                .expect("epoch buckets are never empty");
                            if newest.pos < snap {
                                // The whole bucket (and everything older)
                                // retired before `req` began.
                                break;
                            }
                            // Entries below `snap` end the scan of this
                            // worker once reached; remember whether the
                            // bucket contains any.
                            let has_retired_tail = bucket.entries[0].pos < snap;
                            if self.aggregates {
                                self.comparisons += 1;
                                if !bucket.agg.conflicts_with(&req.sig) {
                                    self.epoch_skips += 1;
                                    if has_retired_tail {
                                        break;
                                    }
                                    continue;
                                }
                            }
                            for logged in bucket.entries.iter().rev() {
                                if logged.pos < snap {
                                    break;
                                }
                                self.comparisons += 1;
                                if logged.sig.conflicts_with(&req.sig) {
                                    found = Some(Conflict {
                                        earlier: (other_tid, logged.pos),
                                        later: (req.tid, req.pos),
                                    });
                                    break 'outer;
                                }
                            }
                            if has_retired_tail {
                                break;
                            }
                        }
                    }
                }
            }
        }
        let buckets = &mut self.logs[req.tid];
        match buckets.back_mut() {
            Some(last) if last.epoch == req.pos.epoch => {
                last.agg.merge(&req.sig);
                last.entries.push(req);
            }
            other => {
                debug_assert!(
                    other.is_none_or(|b| b.epoch < req.pos.epoch),
                    "per-worker requests must be admitted in epoch order"
                );
                buckets.push_back(EpochBucket {
                    epoch: req.pos.epoch,
                    agg: req.sig.clone(),
                    entries: vec![req],
                });
            }
        }
        found
    }

    /// Discards all requests from epochs before `epoch` by popping whole
    /// buckets off the front of each worker's log — O(retired epochs), no
    /// per-entry scan.
    ///
    /// Sound at checkpoint boundaries: a checkpoint fully synchronizes every
    /// worker and drains the checker, so nothing logged before it can race
    /// with anything admitted after it.
    pub fn retire_before(&mut self, epoch: u32) {
        for buckets in &mut self.logs {
            while buckets.front().is_some_and(|b| b.epoch < epoch) {
                buckets.pop_front();
            }
        }
    }

    /// Alias for [`CheckerState::retire_before`], kept for the pre-bucketed
    /// name.
    pub fn prune_before_epoch(&mut self, epoch: u32) {
        self.retire_before(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::{AccessKind, RangeSignature};

    fn sig(addrs: &[usize]) -> RangeSignature {
        let mut s = RangeSignature::empty();
        for &a in addrs {
            s.record(a, AccessKind::Write);
        }
        s
    }

    fn req(
        tid: ThreadId,
        epoch: u32,
        task: u32,
        snapshot: &[(u32, u32)],
        addrs: &[usize],
    ) -> CheckRequest<RangeSignature> {
        CheckRequest {
            tid,
            pos: Position { epoch, task },
            snapshot: snapshot
                .iter()
                .map(|&(e, t)| Position { epoch: e, task: t })
                .collect(),
            sig: sig(addrs),
        }
    }

    #[test]
    fn same_epoch_tasks_are_never_compared() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (1, 0)], &[5])).is_none());
        // Same epoch, same address: DOALL guarantees independence, so no
        // conflict may be raised.
        assert!(c.admit(req(1, 1, 0, &[(1, 1), (1, 0)], &[5])).is_none());
        assert_eq!(c.comparisons(), 0);
    }

    #[test]
    fn overlapping_cross_epoch_conflict_is_detected() {
        let mut c = CheckerState::new(2);
        // Worker 0 runs task <1,0> touching address 5.
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        // Worker 1 starts task <2,0> while worker 0 is still at <1,0>
        // (snapshot records worker 0 at (1,0)) and touches address 5.
        let conflict = c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[5])).unwrap();
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 0 }));
        assert_eq!(conflict.later, (1, Position { epoch: 2, task: 0 }));
        assert_eq!(conflict.earliest_epoch(), 1);
    }

    #[test]
    fn retired_predecessor_does_not_race() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        // Worker 1 starts <2,0> having already observed worker 0 past that
        // task (snapshot (1,1)): barrier-equivalent order, no race.
        assert!(c.admit(req(1, 2, 0, &[(1, 1), (2, 0)], &[5])).is_none());
    }

    #[test]
    fn straggler_conflict_is_detected_on_late_arrival() {
        let mut c = CheckerState::new(2);
        // Worker 1 raced ahead into epoch 2 and its request arrives FIRST.
        // It began while worker 0 was still at <1,0>.
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[9])).is_none());
        // Worker 0's earlier-epoch task now arrives; it is position <1,0>,
        // which the logged task observed as still running.
        let conflict = c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[9])).unwrap();
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 0 }));
        assert_eq!(conflict.later, (1, Position { epoch: 2, task: 0 }));
    }

    #[test]
    fn disjoint_addresses_never_conflict() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[6])).is_none());
        assert!(c.comparisons() > 0, "the racing pair was compared");
    }

    #[test]
    fn empty_signatures_are_skipped() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[])).is_none());
        assert_eq!(c.comparisons(), 0);
    }

    #[test]
    fn same_worker_tasks_are_never_compared() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        assert!(c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[5])).is_none());
    }

    #[test]
    fn prune_discards_old_epochs() {
        let mut c = CheckerState::new(2);
        c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5]));
        c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[6]));
        assert_eq!(c.logged(), 2);
        c.prune_before_epoch(2);
        assert_eq!(c.logged(), 1);
    }

    #[test]
    fn epoch_gap_of_two_is_still_checked() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[7])).is_none());
        // Worker 1 jumped to epoch 3 while worker 0 still in epoch 1.
        let conflict = c.admit(req(1, 3, 0, &[(1, 0), (3, 0)], &[7]));
        assert!(conflict.is_some());
    }

    #[test]
    fn multiple_conflicts_report_first_in_scan_order() {
        // Regression test pinning the admit contract: when several logged
        // tasks conflict with one request, the FIRST conflict in scan order
        // (ascending worker id) is returned — not the one with the earliest
        // epoch. Worker 1 logged an epoch-3 task and worker 2 an epoch-1
        // task; both overlap and conflict with the request, and the report
        // names worker 1's pair, so `earliest_epoch()` is 3 even though a
        // conflicting epoch-1 task exists.
        let mut c = CheckerState::new(3);
        assert!(c
            .admit(req(1, 3, 0, &[(0, 0), (3, 0), (0, 0)], &[7]))
            .is_none());
        assert!(c
            .admit(req(2, 1, 0, &[(0, 0), (4, 0), (1, 0)], &[9]))
            .is_none());
        // Request from worker 0 at epoch 5, overlapping both logged tasks
        // (snapshot shows neither retired) and touching both addresses.
        let conflict = c
            .admit(req(0, 5, 0, &[(5, 0), (3, 0), (1, 0)], &[7, 8, 9]))
            .expect("both logged tasks conflict");
        assert_eq!(conflict.earlier, (1, Position { epoch: 3, task: 0 }));
        assert_eq!(conflict.later, (0, Position { epoch: 5, task: 0 }));
        assert_eq!(conflict.earliest_epoch(), 3, "scan order, not min epoch");
    }

    #[test]
    fn disjoint_epoch_buckets_are_skipped_via_aggregate() {
        // Worker 0 logs many epoch-1 tasks clustered in [0, 100); a later
        // epoch-2 request touching [200, 300) skips the whole bucket with
        // one aggregate comparison.
        let mut c = CheckerState::new(2);
        for task in 0..16u32 {
            assert!(c
                .admit(req(0, 1, task, &[(1, task), (0, 0)], &[task as usize * 4]))
                .is_none());
        }
        let before = c.comparisons();
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[250])).is_none());
        assert_eq!(c.comparisons() - before, 1, "one aggregate test only");
        assert_eq!(c.epoch_skips(), 1);
    }

    #[test]
    fn aggregate_hit_falls_back_to_member_scan() {
        // The aggregate overlaps but only one member really conflicts: the
        // per-member scan still runs and finds the right pair.
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[10])).is_none());
        assert!(c.admit(req(0, 1, 1, &[(1, 1), (0, 0)], &[50])).is_none());
        let conflict = c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[50])).unwrap();
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 1 }));
        assert_eq!(c.epoch_skips(), 0);
    }

    #[test]
    fn retire_before_pops_whole_buckets() {
        let mut c = CheckerState::new(2);
        c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5]));
        c.admit(req(0, 1, 1, &[(1, 1), (0, 0)], &[5]));
        c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[6]));
        c.admit(req(1, 1, 0, &[(1, 0), (1, 0)], &[7]));
        assert_eq!(c.logged(), 4);
        c.retire_before(2);
        assert_eq!(c.logged(), 1);
        c.retire_before(3);
        assert_eq!(c.logged(), 0);
    }

    #[test]
    fn retire_at_epoch_boundary_keeps_that_epoch() {
        // `retire_before(e)` is strict: a bucket AT epoch `e` survives and
        // still participates in conflict detection afterwards.
        let mut c = CheckerState::new(2);
        c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5]));
        c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[6]));
        c.retire_before(2);
        assert_eq!(c.logged(), 1, "epoch-2 bucket survives its own boundary");
        let conflict = c.admit(req(1, 3, 0, &[(2, 0), (3, 0)], &[6]));
        assert!(conflict.is_some(), "surviving bucket still detects races");
    }

    #[test]
    fn retire_all_empties_every_log_and_admission_restarts() {
        let mut c = CheckerState::new(3);
        for tid in 0..3 {
            c.admit(req(tid, 1, 0, &[(1, 0), (1, 0), (1, 0)], &[tid * 8]));
        }
        assert_eq!(c.logged(), 3);
        c.retire_before(u32::MAX);
        assert_eq!(c.logged(), 0);
        // Admission after a full retire starts fresh buckets; the wiped log
        // cannot produce phantom conflicts against pre-retire tasks.
        assert!(c
            .admit(req(0, 9, 0, &[(9, 0), (1, 0), (1, 0)], &[0]))
            .is_none());
        assert!(c
            .admit(req(1, 9, 0, &[(9, 0), (9, 0), (1, 0)], &[0]))
            .is_none());
        assert_eq!(c.logged(), 2);
    }

    #[test]
    fn retire_with_in_flight_batch_pops_the_whole_bucket_at_once() {
        // A worker batches several requests into one epoch bucket; a retire
        // strictly past that epoch drops ALL of them in one pop, while a
        // retire at the boundary drops none — there is no partial state.
        let mut c = CheckerState::new(2);
        for task in 0..5u32 {
            c.admit(req(0, 3, task, &[(3, task), (0, 0)], &[task as usize]));
        }
        c.admit(req(1, 3, 0, &[(3, 0), (3, 0)], &[40]));
        assert_eq!(c.logged(), 6);
        c.retire_before(3);
        assert_eq!(c.logged(), 6, "boundary retire keeps the in-flight batch");
        c.retire_before(4);
        assert_eq!(c.logged(), 0, "one epoch later the whole batch retires");
        // In-flight work admitted after the truncation is checked only
        // against post-truncation entries.
        assert!(c.admit(req(0, 5, 0, &[(5, 0), (3, 0)], &[2])).is_none());
    }

    #[test]
    fn retire_interleaved_with_stragglers_keeps_verdicts() {
        // Retire runs between two admissions of a racing pair: as long as
        // the logged side survives the truncation, the verdict is unchanged.
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(1, 4, 0, &[(2, 0), (4, 0)], &[9])).is_none());
        c.retire_before(3); // drops nothing from worker 1 (epoch 4 >= 3)
        let conflict = c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[9]));
        assert!(conflict.is_some(), "straggler still conflicts after retire");
    }

    #[test]
    fn aggregates_off_reaches_identical_verdicts() {
        // The epoch-summary fast path is an optimization only: the same
        // admission stream must produce the same verdict sequence with the
        // aggregate short-circuit disabled (member-by-member scanning).
        let streams: Vec<Vec<CheckRequest<RangeSignature>>> = vec![
            vec![
                req(0, 1, 0, &[(1, 0), (0, 0)], &[5]),
                req(1, 2, 0, &[(1, 0), (2, 0)], &[5]),
            ],
            vec![
                req(0, 1, 0, &[(1, 0), (0, 0)], &[5]),
                req(1, 2, 0, &[(1, 0), (2, 0)], &[6]),
                req(0, 2, 0, &[(2, 0), (2, 0)], &[7]),
            ],
            vec![
                req(1, 2, 0, &[(1, 0), (2, 0)], &[9]),
                req(0, 1, 0, &[(1, 0), (0, 0)], &[9]),
            ],
        ];
        for (i, stream) in streams.into_iter().enumerate() {
            let mut fast = CheckerState::with_aggregates(2, true);
            let mut slow = CheckerState::with_aggregates(2, false);
            for (j, r) in stream.into_iter().enumerate() {
                let a = fast.admit(r.clone());
                let b = slow.admit(r);
                assert_eq!(a, b, "stream {i}, request {j}");
            }
            assert_eq!(slow.epoch_skips(), 0, "no skips without aggregates");
        }
    }

    #[test]
    fn conflicting_but_non_overlapping_many_tasks() {
        // A long fully-ordered chain: each task observes the previous worker
        // already past the dependence; no conflicts anywhere.
        let mut c = CheckerState::new(2);
        for epoch in 0..20u32 {
            let tid = (epoch % 2) as usize;
            let other_done = Position {
                epoch,
                task: u32::MAX, // predecessor long retired
            };
            let mut snapshot = [Position::ZERO; 2];
            snapshot[1 - tid] = other_done;
            snapshot[tid] = Position { epoch, task: 0 };
            let r = CheckRequest {
                tid,
                pos: Position { epoch, task: 0 },
                snapshot: snapshot.to_vec().into_boxed_slice(),
                sig: sig(&[3]),
            };
            assert!(c.admit(r).is_none(), "epoch {epoch} must not conflict");
        }
    }
}
