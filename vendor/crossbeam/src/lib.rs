//! Offline shim for the subset of `crossbeam` this workspace uses:
//! [`utils::Backoff`], [`utils::CachePadded`] and the multi-producer
//! [`channel`]. Semantics match the upstream crate for the covered surface.

/// Spin-loop and cache-padding utilities.
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    #[derive(Debug)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        /// Creates a backoff at the initial (busiest) step.
        pub fn new() -> Self {
            Self { step: Cell::new(0) }
        }

        /// Resets to the initial step.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Busy-spins for a step-dependent number of iterations.
        pub fn spin(&self) {
            let step = self.step.get().min(SPIN_LIMIT);
            for _ in 0..(1u32 << step) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Spins while the wait is expected to be short, then yields the
        /// thread to the OS scheduler.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..(1u32 << self.step.get()) {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Whether backoff has saturated (callers should block instead).
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    /// Pads and aligns a value to 128 bytes to defeat false sharing.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

/// Multi-producer multi-consumer FIFO channel (unbounded flavour only).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // Poison-transparent: a sender/receiver panicking while holding
            // the queue lock must not wedge the other endpoints.
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending endpoint; clonable for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// The receiving endpoint.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when drained with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when drained with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] past the deadline,
        /// [`RecvTimeoutError::Disconnected`] when drained with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn cache_padding_aligns_to_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(c.into_inner(), 7);
    }

    #[test]
    fn backoff_saturates() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = unbounded::<u8>();
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
    }

    #[test]
    fn cross_thread_transfer() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv(), Ok(i));
        }
        t.join().unwrap();
    }
}
