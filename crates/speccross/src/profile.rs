//! Dependence-distance profiling (§4.4, Table 5.3).
//!
//! Before speculating, SPECCROSS profiles the program on a training input:
//! every task's signature is compared against tasks of earlier epochs, and
//! for each conflicting pair the *dependence distance* — the number of tasks
//! separating them in the sequential (epoch-major) order — is recorded. The
//! minimum observed distance parameterizes the speculative-range gate at
//! run time: the leading thread is never allowed to run more than that many
//! tasks ahead of the trailing thread, so profiled dependences cannot
//! manifest as misspeculation. If no conflict is ever observed the distance
//! is unbounded (the `*` entries of Table 5.3).

use crossinvoc_runtime::signature::AccessSignature;

/// Outcome of a profiling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileReport {
    /// Minimum tasks between two cross-epoch conflicting tasks, or `None`
    /// if no conflict manifested (Table 5.3 prints `*`).
    pub min_distance: Option<u64>,
    /// Number of conflicting cross-epoch pairs observed.
    pub conflicts: u64,
    /// Tasks profiled.
    pub tasks: u64,
    /// Epochs profiled.
    pub epochs: u64,
}

impl ProfileReport {
    /// Whether speculation is recommended: either no conflict manifested or
    /// the closest one is farther than `threshold` tasks apart (the thesis
    /// defaults the threshold to the worker count, §4.4).
    pub fn recommends_speculation(&self, threshold: u64) -> bool {
        match self.min_distance {
            None => true,
            Some(d) => d >= threshold,
        }
    }
}

/// Streaming minimum-dependence-distance profiler.
///
/// Feed tasks in sequential order with [`DistanceProfiler::epoch_boundary`]
/// between epochs; read the result with [`DistanceProfiler::report`].
///
/// Signatures are retained for a sliding window of epochs
/// (`window_epochs`). Conflicts farther apart than the window are ignored,
/// which only ever *under*-reports safety margins (the gate becomes more
/// conservative, never less sound).
#[derive(Debug)]
pub struct DistanceProfiler<S> {
    window_epochs: u32,
    /// `(epoch, global_task_index, signature)` for retained tasks.
    history: Vec<(u32, u64, S)>,
    current_epoch: u32,
    next_task: u64,
    tasks_in_current_epoch: u64,
    min_distance: Option<u64>,
    conflicts: u64,
}

impl<S: AccessSignature> DistanceProfiler<S> {
    /// Creates a profiler comparing each task against the previous
    /// `window_epochs` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `window_epochs` is zero.
    pub fn new(window_epochs: u32) -> Self {
        assert!(window_epochs > 0, "window must cover at least one epoch");
        Self {
            window_epochs,
            history: Vec::new(),
            current_epoch: 0,
            next_task: 0,
            tasks_in_current_epoch: 0,
            min_distance: None,
            conflicts: 0,
        }
    }

    /// Records the end of the current epoch.
    pub fn epoch_boundary(&mut self) {
        self.current_epoch += 1;
        self.tasks_in_current_epoch = 0;
        let keep_from = self.current_epoch.saturating_sub(self.window_epochs);
        self.history.retain(|&(e, _, _)| e >= keep_from);
    }

    /// Records the next task in sequential order.
    ///
    /// The history is scanned newest-first and abandoned once every
    /// remaining entry is strictly farther than the current minimum — the
    /// reported minimum is exact, and `conflicts` counts every pair at
    /// distances up to (and including) it.
    pub fn record_task(&mut self, sig: S) {
        let index = self.next_task;
        self.next_task += 1;
        self.tasks_in_current_epoch += 1;
        if !sig.is_empty() {
            for (epoch, past_index, past_sig) in self.history.iter().rev() {
                let distance = index - past_index;
                if let Some(d) = self.min_distance {
                    if distance > d {
                        break; // older entries are farther still
                    }
                }
                if *epoch != self.current_epoch && sig.conflicts_with(past_sig) {
                    self.conflicts += 1;
                    self.min_distance = Some(match self.min_distance {
                        Some(d) => d.min(distance),
                        None => distance,
                    });
                }
            }
        }
        self.history.push((self.current_epoch, index, sig));
    }

    /// Finalizes the profile.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            min_distance: self.min_distance,
            conflicts: self.conflicts,
            tasks: self.next_task,
            epochs: self.current_epoch as u64 + u64::from(self.tasks_in_current_epoch > 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::{AccessKind, RangeSignature};

    fn sig(addr: usize) -> RangeSignature {
        let mut s = RangeSignature::empty();
        s.record(addr, AccessKind::Write);
        s
    }

    #[test]
    fn no_conflicts_reports_unbounded_distance() {
        let mut p = DistanceProfiler::new(4);
        for epoch in 0..3 {
            for task in 0..5 {
                p.record_task(sig(epoch * 5 + task));
            }
            p.epoch_boundary();
        }
        let r = p.report();
        assert_eq!(r.min_distance, None);
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.tasks, 15);
        assert!(r.recommends_speculation(24));
    }

    #[test]
    fn adjacent_epoch_conflict_distance() {
        let mut p = DistanceProfiler::new(4);
        // Epoch 0: tasks 0..4 write cells 0..4.
        for task in 0..4 {
            p.record_task(sig(task));
        }
        p.epoch_boundary();
        // Epoch 1: task 4 (global) writes cell 1 → conflicts with global
        // task 1 at distance 3.
        p.record_task(sig(1));
        let r = p.report();
        assert_eq!(r.min_distance, Some(3));
        assert_eq!(r.conflicts, 1);
        assert!(!r.recommends_speculation(8));
        assert!(r.recommends_speculation(3));
    }

    #[test]
    fn same_epoch_conflicts_are_ignored() {
        let mut p = DistanceProfiler::new(4);
        p.record_task(sig(7));
        p.record_task(sig(7)); // same epoch: never a barrier violation
        assert_eq!(p.report().conflicts, 0);
    }

    #[test]
    fn minimum_is_kept_over_many_conflicts() {
        let mut p = DistanceProfiler::new(8);
        for task in 0..10 {
            p.record_task(sig(task));
        }
        p.epoch_boundary();
        p.record_task(sig(0)); // distance 10
        p.record_task(sig(9)); // distance 2
        let r = p.report();
        assert_eq!(r.min_distance, Some(2));
        assert_eq!(r.conflicts, 2);
    }

    #[test]
    fn window_limits_comparisons() {
        let mut p = DistanceProfiler::new(1);
        p.record_task(sig(5));
        p.epoch_boundary();
        p.record_task(sig(42));
        p.epoch_boundary();
        // Epoch 2 conflicts only with epoch 0, which fell out of the window.
        p.record_task(sig(5));
        assert_eq!(p.report().conflicts, 0);
    }

    #[test]
    fn empty_signatures_are_cheap() {
        let mut p: DistanceProfiler<RangeSignature> = DistanceProfiler::new(2);
        p.record_task(RangeSignature::empty());
        p.epoch_boundary();
        p.record_task(RangeSignature::empty());
        assert_eq!(p.report().conflicts, 0);
        assert_eq!(p.report().tasks, 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = DistanceProfiler::<RangeSignature>::new(0);
    }
}
