//! Iteration-to-worker assignment policies (§3.3.3).
//!
//! The thesis ships two schedulers and notes the design is pluggable
//! ("DOMORE allows for the easy integration of other smarter scheduling
//! techniques"): round-robin, and LOCALWRITE-style memory partitioning in
//! which each worker owns a region of the shared address space and
//! iterations run on the owner of the memory they touch.
//!
//! Policies must be *deterministic* functions of the iteration stream: the
//! duplicated-scheduler variant (§3.4) replays the policy independently on
//! every worker and relies on all replicas agreeing.

use crossinvoc_runtime::{IterNum, ThreadId};

/// Deterministic assignment of iterations to workers.
pub trait Policy: Send {
    /// Chooses the worker for the iteration with combined number `iter`
    /// touching `addrs`, among `num_workers` workers.
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId;

    /// A fresh replica with identical future behaviour, for scheduler
    /// duplication. Stateful policies must replicate their state.
    fn replicate(&self) -> Box<dyn Policy>;
}

/// Round-robin assignment: iteration `i` runs on worker `i % N`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Policy for RoundRobin {
    fn assign(&mut self, iter: IterNum, _addrs: &[usize], num_workers: usize) -> ThreadId {
        (iter % num_workers as u64) as ThreadId
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// LOCALWRITE-style owner-computes assignment (§3.3.3, after Han & Tseng).
///
/// The shared address space `0..address_space` is split into `num_workers`
/// contiguous chunks; an iteration runs on the owner of its *first written*
/// address. (The thesis notes that when an iteration touches several owners
/// LOCALWRITE replicates it; DOMORE instead picks one owner and lets the
/// shadow-memory logic synchronize the rest, which is what this policy does.)
#[derive(Debug, Clone, Copy)]
pub struct LocalWrite {
    address_space: usize,
}

impl LocalWrite {
    /// Creates an owner-computes policy over addresses `0..address_space`.
    ///
    /// # Panics
    ///
    /// Panics if `address_space` is zero.
    pub fn new(address_space: usize) -> Self {
        assert!(address_space > 0, "address space must be positive");
        Self { address_space }
    }

    /// The worker owning `addr` among `num_workers` workers.
    pub fn owner(&self, addr: usize, num_workers: usize) -> ThreadId {
        let chunk = self.address_space.div_ceil(num_workers);
        (addr / chunk).min(num_workers - 1)
    }
}

impl Policy for LocalWrite {
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId {
        match addrs.first() {
            Some(&addr) => self.owner(addr, num_workers),
            // Address-free iterations fall back to round-robin spreading.
            None => (iter % num_workers as u64) as ThreadId,
        }
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Owner-computes over congruence classes: ownership of address `a` is
/// decided by `a % modulus`, so arrays laid out back-to-back over the same
/// logical grid (field arrays of a simulation, one per phase) share one
/// partition. This is how LOCALWRITE partitions FLUIDANIMATE's grid in the
/// §5.4 case study: a cell's densities, forces and velocities all belong
/// to the cell's owner.
#[derive(Debug, Clone, Copy)]
pub struct ModuloWrite {
    inner: LocalWrite,
    modulus: usize,
}

impl ModuloWrite {
    /// Creates a policy partitioning the congruence classes `0..modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(modulus: usize) -> Self {
        Self {
            inner: LocalWrite::new(modulus),
            modulus,
        }
    }
}

impl Policy for ModuloWrite {
    fn assign(&mut self, iter: IterNum, addrs: &[usize], num_workers: usize) -> ThreadId {
        match addrs.first() {
            Some(&addr) => self.inner.owner(addr % self.modulus, num_workers),
            None => (iter % num_workers as u64) as ThreadId,
        }
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Chunked assignment: consecutive runs of `chunk` iterations share a worker.
///
/// This is the static-block schedule conventional DOALL codegen uses; it is
/// provided as a baseline for the scheduling-policy ablation.
#[derive(Debug, Clone, Copy)]
pub struct Chunked {
    chunk: u64,
}

impl Chunked {
    /// Creates a policy mapping iterations `[k*chunk, (k+1)*chunk)` to worker
    /// `k % N`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        Self { chunk }
    }
}

impl Policy for Chunked {
    fn assign(&mut self, iter: IterNum, _addrs: &[usize], num_workers: usize) -> ThreadId {
        ((iter / self.chunk) % num_workers as u64) as ThreadId
    }

    fn replicate(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_workers() {
        let mut p = RoundRobin;
        let tids: Vec<_> = (0..6).map(|i| p.assign(i, &[], 3)).collect();
        assert_eq!(tids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn local_write_partitions_address_space() {
        let mut p = LocalWrite::new(100);
        assert_eq!(p.assign(0, &[0], 4), 0);
        assert_eq!(p.assign(1, &[25], 4), 1);
        assert_eq!(p.assign(2, &[99], 4), 3);
    }

    #[test]
    fn local_write_clamps_last_chunk() {
        // 10 addresses over 3 workers → chunks of 4; address 9 is owner 2.
        let p = LocalWrite::new(10);
        assert_eq!(p.owner(9, 3), 2);
    }

    #[test]
    fn local_write_same_address_same_owner() {
        let mut p = LocalWrite::new(64);
        let a = p.assign(0, &[17], 8);
        let b = p.assign(5, &[17], 8);
        assert_eq!(a, b, "ownership is a pure function of the address");
    }

    #[test]
    fn local_write_without_addresses_spreads() {
        let mut p = LocalWrite::new(64);
        assert_eq!(p.assign(0, &[], 4), 0);
        assert_eq!(p.assign(1, &[], 4), 1);
    }

    #[test]
    fn modulo_write_unifies_field_arrays() {
        // Cell c of every field array (base + c) maps to one owner.
        let mut p = ModuloWrite::new(100);
        let a = p.assign(0, &[42], 4);
        let b = p.assign(1, &[100 + 42], 4);
        let c = p.assign(2, &[500 + 42], 4);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "address space must be positive")]
    fn modulo_write_zero_panics() {
        ModuloWrite::new(0);
    }

    #[test]
    fn chunked_groups_consecutive_iterations() {
        let mut p = Chunked::new(2);
        let tids: Vec<_> = (0..8).map(|i| p.assign(i, &[], 2)).collect();
        assert_eq!(tids, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn replicas_agree_with_originals() {
        let mut original = LocalWrite::new(32);
        let mut replica = original.replicate();
        for i in 0..32 {
            assert_eq!(
                original.assign(i, &[i as usize], 4),
                replica.assign(i, &[i as usize], 4)
            );
        }
    }

    #[test]
    #[should_panic(expected = "address space must be positive")]
    fn local_write_zero_space_panics() {
        LocalWrite::new(0);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn chunked_zero_panics() {
        Chunked::new(0);
    }
}
