//! The pure misspeculation-detection algorithm (§4.2.1).
//!
//! Barrier semantics demand that every task of epoch *e−1* happen before
//! every task of epoch *e*. SPECCROSS lets epochs overlap and detects, after
//! the fact, whether any pair of tasks whose relative order speculation may
//! have changed actually conflicted. A pair needs checking exactly when
//!
//! 1. the tasks ran on different workers,
//! 2. their epochs differ (same-epoch tasks are independent by the inner
//!    loop's DOALL property — the key saving over TM-style schemes,
//!    Fig. 4.4), and
//! 3. they *overlapped*: the earlier-epoch task had not retired when the
//!    later-epoch task began (observed through the position snapshot the
//!    later task records at start; Fig. 4.6's timing diagram).
//!
//! [`CheckerState::admit`] realises this symmetrically: an arriving task is
//! compared both against logged earlier-epoch tasks that overlapped it, and
//! against logged later-epoch tasks it overlapped (covering stragglers whose
//! requests arrive late).
//!
//! The structure is pure — no threads, no channels — so the threaded checker
//! (`engine`), the profiler and the discrete-event simulator all share it.

use crossinvoc_runtime::signature::AccessSignature;
use crossinvoc_runtime::ThreadId;

use crate::position::Position;

/// One task's checking request: who ran it, where, what it touched, and the
/// position every other worker was at when it started.
#[derive(Debug, Clone)]
pub struct CheckRequest<S> {
    /// Worker that executed the task.
    pub tid: ThreadId,
    /// The task's position (epoch, per-thread task number).
    pub pos: Position,
    /// Positions of *all* workers observed at task start (`snapshot[tid]`
    /// is the task's own slot and is ignored).
    pub snapshot: Box<[Position]>,
    /// The task's access signature.
    pub sig: S,
}

/// A detected dependence violation between two overlapping tasks from
/// different epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Worker/position of the earlier-epoch task.
    pub earlier: (ThreadId, Position),
    /// Worker/position of the later-epoch task.
    pub later: (ThreadId, Position),
}

impl Conflict {
    /// Epoch of the earlier participant (recovery re-executes from the
    /// checkpoint at or before this epoch).
    pub fn earliest_epoch(&self) -> u32 {
        self.earlier.1.epoch
    }
}

/// Append-only signature log plus the conflict test (the Signature Log of
/// Fig. 4.8 merged with `check_request` of Fig. 4.7).
#[derive(Debug)]
pub struct CheckerState<S> {
    /// Per-worker logs, each ordered by position (workers log in order).
    logs: Vec<Vec<CheckRequest<S>>>,
    comparisons: u64,
}

impl<S: AccessSignature> CheckerState<S> {
    /// Creates an empty checker for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            logs: (0..num_workers).map(|_| Vec::new()).collect(),
            comparisons: 0,
        }
    }

    /// Number of signature comparisons performed so far (reported in the
    /// checking-overhead discussion of §5.2).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Total logged requests.
    pub fn logged(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }

    /// Logs `req` and tests it against every logged task it may have raced
    /// with. Returns the first conflict found, if any.
    ///
    /// Empty signatures are logged but never compared (they cannot conflict).
    pub fn admit(&mut self, req: CheckRequest<S>) -> Option<Conflict> {
        let mut found = None;
        if !req.sig.is_empty() {
            'outer: for (other_tid, log) in self.logs.iter().enumerate() {
                if other_tid == req.tid {
                    continue;
                }
                for logged in log.iter().rev() {
                    // Logs are position-ordered; once below both windows we
                    // can stop scanning this worker.
                    if logged.pos < req.snapshot[other_tid] && logged.pos.epoch < req.pos.epoch {
                        break;
                    }
                    let races = if logged.pos.epoch < req.pos.epoch {
                        // `logged` is earlier-epoch: they overlapped iff it
                        // had not retired when `req` started.
                        logged.pos >= req.snapshot[other_tid]
                    } else if logged.pos.epoch > req.pos.epoch {
                        // `req` is the earlier-epoch straggler: they
                        // overlapped iff `req` had not retired when `logged`
                        // started.
                        req.pos >= logged.snapshot[req.tid]
                    } else {
                        false // same epoch: independent by construction
                    };
                    if races {
                        self.comparisons += 1;
                        if logged.sig.conflicts_with(&req.sig) {
                            let (earlier, later) = if logged.pos.epoch < req.pos.epoch {
                                ((other_tid, logged.pos), (req.tid, req.pos))
                            } else {
                                ((req.tid, req.pos), (other_tid, logged.pos))
                            };
                            found = Some(Conflict { earlier, later });
                            break 'outer;
                        }
                    }
                }
            }
        }
        self.logs[req.tid].push(req);
        found
    }

    /// Discards all requests from epochs before `epoch`.
    ///
    /// Sound at checkpoint boundaries: a checkpoint fully synchronizes every
    /// worker and drains the checker, so nothing logged before it can race
    /// with anything admitted after it.
    pub fn prune_before_epoch(&mut self, epoch: u32) {
        for log in &mut self.logs {
            log.retain(|r| r.pos.epoch >= epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::{AccessKind, RangeSignature};

    fn sig(addrs: &[usize]) -> RangeSignature {
        let mut s = RangeSignature::empty();
        for &a in addrs {
            s.record(a, AccessKind::Write);
        }
        s
    }

    fn req(
        tid: ThreadId,
        epoch: u32,
        task: u32,
        snapshot: &[(u32, u32)],
        addrs: &[usize],
    ) -> CheckRequest<RangeSignature> {
        CheckRequest {
            tid,
            pos: Position { epoch, task },
            snapshot: snapshot
                .iter()
                .map(|&(e, t)| Position { epoch: e, task: t })
                .collect(),
            sig: sig(addrs),
        }
    }

    #[test]
    fn same_epoch_tasks_are_never_compared() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (1, 0)], &[5])).is_none());
        // Same epoch, same address: DOALL guarantees independence, so no
        // conflict may be raised.
        assert!(c.admit(req(1, 1, 0, &[(1, 1), (1, 0)], &[5])).is_none());
        assert_eq!(c.comparisons(), 0);
    }

    #[test]
    fn overlapping_cross_epoch_conflict_is_detected() {
        let mut c = CheckerState::new(2);
        // Worker 0 runs task <1,0> touching address 5.
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        // Worker 1 starts task <2,0> while worker 0 is still at <1,0>
        // (snapshot records worker 0 at (1,0)) and touches address 5.
        let conflict = c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[5])).unwrap();
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 0 }));
        assert_eq!(conflict.later, (1, Position { epoch: 2, task: 0 }));
        assert_eq!(conflict.earliest_epoch(), 1);
    }

    #[test]
    fn retired_predecessor_does_not_race() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        // Worker 1 starts <2,0> having already observed worker 0 past that
        // task (snapshot (1,1)): barrier-equivalent order, no race.
        assert!(c.admit(req(1, 2, 0, &[(1, 1), (2, 0)], &[5])).is_none());
    }

    #[test]
    fn straggler_conflict_is_detected_on_late_arrival() {
        let mut c = CheckerState::new(2);
        // Worker 1 raced ahead into epoch 2 and its request arrives FIRST.
        // It began while worker 0 was still at <1,0>.
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[9])).is_none());
        // Worker 0's earlier-epoch task now arrives; it is position <1,0>,
        // which the logged task observed as still running.
        let conflict = c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[9])).unwrap();
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 0 }));
        assert_eq!(conflict.later, (1, Position { epoch: 2, task: 0 }));
    }

    #[test]
    fn disjoint_addresses_never_conflict() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[6])).is_none());
        assert!(c.comparisons() > 0, "the racing pair was compared");
    }

    #[test]
    fn empty_signatures_are_skipped() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[])).is_none());
        assert_eq!(c.comparisons(), 0);
    }

    #[test]
    fn same_worker_tasks_are_never_compared() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5])).is_none());
        assert!(c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[5])).is_none());
    }

    #[test]
    fn prune_discards_old_epochs() {
        let mut c = CheckerState::new(2);
        c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[5]));
        c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[6]));
        assert_eq!(c.logged(), 2);
        c.prune_before_epoch(2);
        assert_eq!(c.logged(), 1);
    }

    #[test]
    fn epoch_gap_of_two_is_still_checked() {
        let mut c = CheckerState::new(2);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[7])).is_none());
        // Worker 1 jumped to epoch 3 while worker 0 still in epoch 1.
        let conflict = c.admit(req(1, 3, 0, &[(1, 0), (3, 0)], &[7]));
        assert!(conflict.is_some());
    }

    #[test]
    fn conflicting_but_non_overlapping_many_tasks() {
        // A long fully-ordered chain: each task observes the previous worker
        // already past the dependence; no conflicts anywhere.
        let mut c = CheckerState::new(2);
        for epoch in 0..20u32 {
            let tid = (epoch % 2) as usize;
            let other_done = Position {
                epoch,
                task: u32::MAX, // predecessor long retired
            };
            let mut snapshot = [Position::ZERO; 2];
            snapshot[1 - tid] = other_done;
            snapshot[tid] = Position { epoch, task: 0 };
            let r = CheckRequest {
                tid,
                pos: Position { epoch, task: 0 },
                snapshot: snapshot.to_vec().into_boxed_slice(),
                sig: sig(&[3]),
            };
            assert!(c.admit(r).is_none(), "epoch {epoch} must not conflict");
        }
    }
}
