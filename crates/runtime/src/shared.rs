//! Shared mutable memory for runtime-scheduled workers.
//!
//! The kernels parallelized by DOMORE and SPECCROSS mutate shared arrays from
//! multiple worker threads, with the *runtime* — not the type system —
//! guaranteeing that conflicting accesses are ordered (by synchronization
//! conditions, memory partitioning, or speculation with rollback). That
//! contract cannot be expressed to the borrow checker, so [`SharedSlice`]
//! provides raw indexed access behind an explicit `unsafe` surface, in the
//! same spirit as the internals of data-parallel libraries.

use std::cell::UnsafeCell;
use std::fmt;

/// A heap-allocated slice that may be read and written concurrently by
/// multiple threads under an external scheduling discipline.
///
/// # Safety contract
///
/// The unsafe accessors require that, for any two concurrent accesses to the
/// same index where at least one is a write, the caller's scheduler has
/// ordered them with a happens-before edge (DOMORE synchronization
/// conditions, LOCALWRITE ownership, epoch re-execution after rollback, …).
/// The safe [`SharedSlice::snapshot`] and [`SharedSlice::fill`] methods
/// require exclusive access via `&mut self`.
///
/// # Example
///
/// ```
/// use crossinvoc_runtime::SharedSlice;
///
/// let data = SharedSlice::from_vec(vec![0u64; 4]);
/// // Sole accessor, so unordered access is trivially race-free:
/// unsafe { data.write(2, 7) };
/// assert_eq!(unsafe { data.read(2) }, 7);
/// ```
pub struct SharedSlice<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: all concurrent access goes through the unsafe read/write methods,
// whose contract (above) pushes data-race freedom onto the scheduling
// discipline of the calling runtime.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wraps an owned vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self {
            cells: data
                .into_iter()
                .map(UnsafeCell::new)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads element `index`.
    ///
    /// # Safety
    ///
    /// No thread may be concurrently writing `index` without a
    /// happens-before edge to this read (see the type-level contract).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        *self.cells[index].get()
    }

    /// Writes element `index`.
    ///
    /// # Safety
    ///
    /// No thread may be concurrently accessing `index` without a
    /// happens-before edge (see the type-level contract).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        *self.cells[index].get() = value;
    }

    /// Applies `f` to element `index` in place.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedSlice::write`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub unsafe fn update(&self, index: usize, f: impl FnOnce(&mut T)) {
        f(&mut *self.cells[index].get())
    }

    /// Copies the contents into a fresh `Vec`.
    ///
    /// Takes `&mut self`, so the snapshot is quiescent by construction.
    pub fn snapshot(&mut self) -> Vec<T>
    where
        T: Clone,
    {
        self.cells.iter_mut().map(|c| c.get_mut().clone()).collect()
    }

    /// Overwrites the contents from `values`.
    ///
    /// Used by SPECCROSS recovery to restore a checkpoint. Takes `&mut self`,
    /// so no worker may be running.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn fill(&mut self, values: &[T])
    where
        T: Clone,
    {
        assert_eq!(values.len(), self.len(), "length mismatch in fill");
        for (cell, v) in self.cells.iter_mut().zip(values) {
            *cell.get_mut() = v.clone();
        }
    }

    /// Exclusive view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusivity; UnsafeCell<T> has the
        // same layout as T.
        unsafe { std::slice::from_raw_parts_mut(self.cells.as_mut_ptr() as *mut T, self.len()) }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedSlice(len = {})", self.cells.len())
    }
}

impl<T> From<Vec<T>> for SharedSlice<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn read_write_roundtrip() {
        let s = SharedSlice::from_vec(vec![0i64; 8]);
        unsafe {
            s.write(3, -5);
            assert_eq!(s.read(3), -5);
            s.update(3, |v| *v *= 2);
            assert_eq!(s.read(3), -10);
        }
    }

    #[test]
    fn snapshot_and_fill_roundtrip() {
        let mut s = SharedSlice::from_vec(vec![1u32, 2, 3]);
        let snap = s.snapshot();
        unsafe { s.write(0, 99) };
        assert_eq!(unsafe { s.read(0) }, 99);
        s.fill(&snap);
        assert_eq!(s.snapshot(), vec![1, 2, 3]);
    }

    #[test]
    fn disjoint_parallel_writes_are_race_free() {
        let s = Arc::new(SharedSlice::from_vec(vec![0usize; 1024]));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in (tid..1024).step_by(4) {
                    // Disjoint indices per thread: the LOCALWRITE discipline.
                    unsafe { s.write(i, i * 2) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut s = Arc::try_unwrap(s).unwrap();
        for (i, v) in s.snapshot().into_iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn as_mut_slice_reflects_writes() {
        let mut s = SharedSlice::from_vec(vec![0u8; 4]);
        s.as_mut_slice()[2] = 9;
        assert_eq!(unsafe { s.read(2) }, 9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fill_length_mismatch_panics() {
        SharedSlice::from_vec(vec![1]).fill(&[1, 2]);
    }
}
