//! The loop-nest IR.
//!
//! Programs are arenas of statements with explicit memory operations:
//! scalar expressions never touch arrays, so every shared access is a
//! [`Stmt::Load`] or [`Stmt::Store`] the analyses can see (the same property
//! LLVM's `load`/`store` instructions give the thesis' passes). Opaque
//! calls carry declared effects — purity, commutativity (the property DOANY
//! exploits, §2.2), and may-read/may-write array sets — standing in for the
//! interprocedural summaries of the original infrastructure.

use std::fmt;

/// Index of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Index of a scalar variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Index of a statement in the program arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

/// Binary operators over 64-bit integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Euclidean division (0 on division by zero, like a trapping guard).
    Div,
    /// Euclidean remainder (0 on division by zero).
    Rem,
    /// `1` if less-than, else `0`.
    Lt,
    /// `1` if equal, else `0`.
    Eq,
}

/// A scalar expression (never reads memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read.
    Var(VarId),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

// These constructors build expression *trees*; the names mirror the
// operators deliberately and take no receiver, so the std::ops traits do
// not apply.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `a + b` convenience constructor.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b` convenience constructor.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b` convenience constructor.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a % b` convenience constructor.
    pub fn rem(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Rem, Box::new(a), Box::new(b))
    }

    /// `a < b` convenience constructor.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(a), Box::new(b))
    }

    /// Variables read by this expression, appended to `out`.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

/// Declared effects of an opaque call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallEffect {
    /// May write outside the modelled state (I/O, allocation, …): cannot be
    /// duplicated, speculated or sliced into `computeAddr`.
    pub side_effecting: bool,
    /// Invocations may be reordered with each other (the property DOANY's
    /// lock-based parallelization needs, §2.2).
    pub commutative: bool,
    /// Arrays the call may read.
    pub may_read: Vec<ArrayId>,
    /// Arrays the call may write.
    pub may_write: Vec<ArrayId>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var = expr`.
    Assign {
        /// Destination variable.
        var: VarId,
        /// Value computed.
        expr: Expr,
    },
    /// `var = array[index]`.
    Load {
        /// Destination variable.
        var: VarId,
        /// Source array.
        array: ArrayId,
        /// Element index.
        index: Expr,
    },
    /// `array[index] = value`.
    Store {
        /// Destination array.
        array: ArrayId,
        /// Element index.
        index: Expr,
        /// Value stored.
        value: Expr,
    },
    /// `name(args…)` with declared effects. The interpreter applies a fixed
    /// uninterpreted mixing function to the written arrays so executions
    /// are comparable.
    Call {
        /// Callee name (uninterpreted).
        name: String,
        /// Scalar arguments.
        args: Vec<Expr>,
        /// Declared effects.
        effect: CallEffect,
    },
    /// Two-armed conditional.
    If {
        /// Condition (non-zero = taken).
        cond: Expr,
        /// Statements of the then-arm.
        then_body: Vec<StmtId>,
        /// Statements of the else-arm.
        else_body: Vec<StmtId>,
    },
    /// Counted loop: `for var in from..to`.
    For {
        /// Induction variable (fresh per iteration).
        var: VarId,
        /// Inclusive lower bound.
        from: Expr,
        /// Exclusive upper bound.
        to: Expr,
        /// Loop body.
        body: Vec<StmtId>,
    },
}

/// Declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Debug name.
    pub name: String,
    /// Element count.
    pub len: usize,
}

/// A whole program: declarations plus a top-level statement sequence.
///
/// Equality is structural over declarations and the statement arena, so a
/// program rebuilt through the same builder traversal (e.g. a
/// [`crate::text`] round-trip) compares equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    vars: Vec<String>,
    stmts: Vec<Stmt>,
    body: Vec<StmtId>,
}

impl Program {
    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declared variable names.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The statement arena entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a statement of this program.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0]
    }

    /// Number of statements in the arena.
    pub fn num_stmts(&self) -> usize {
        self.stmts.len()
    }

    /// Top-level statement sequence.
    pub fn body(&self) -> &[StmtId] {
        &self.body
    }

    /// Flat element offset of `array` in the program's linearized memory
    /// (arrays are laid out in declaration order).
    pub fn array_base(&self, array: ArrayId) -> usize {
        self.arrays[..array.0].iter().map(|a| a.len).sum()
    }

    /// Total linearized memory size.
    pub fn memory_len(&self) -> usize {
        self.arrays.iter().map(|a| a.len).sum()
    }

    /// Immediate children of a statement (empty for non-compound ones).
    pub fn children(&self, id: StmtId) -> Vec<StmtId> {
        match self.stmt(id) {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => then_body.iter().chain(else_body).copied().collect(),
            Stmt::For { body, .. } => body.clone(),
            _ => Vec::new(),
        }
    }

    /// All statements in the subtree rooted at `id`, preorder, including
    /// `id` itself.
    pub fn subtree(&self, id: StmtId) -> Vec<StmtId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            out.push(s);
            let mut kids = self.children(s);
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// The statements of `roots` and all their descendants, preorder.
    pub fn subtrees(&self, roots: &[StmtId]) -> Vec<StmtId> {
        roots.iter().flat_map(|&r| self.subtree(r)).collect()
    }
}

/// Incremental [`Program`] constructor.
///
/// Compound statements are built with closures:
///
/// ```
/// use crossinvoc_pir::ir::{Expr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let a = b.array("A", 10);
/// let i = b.var("i");
/// let t = b.var("t");
/// b.for_loop(i, Expr::Const(0), Expr::Const(10), |b| {
///     b.load(t, a, Expr::Var(i));
///     b.store(a, Expr::Var(i), Expr::add(Expr::Var(t), Expr::Const(1)));
/// });
/// let program = b.finish();
/// assert_eq!(program.num_stmts(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    /// Stack of open bodies; the innermost receives new statements.
    scopes: Vec<Vec<StmtId>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            program: Program::default(),
            scopes: vec![Vec::new()],
        }
    }

    /// Declares an array of `len` elements.
    pub fn array(&mut self, name: &str, len: usize) -> ArrayId {
        self.program.arrays.push(ArrayDecl {
            name: name.to_owned(),
            len,
        });
        ArrayId(self.program.arrays.len() - 1)
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: &str) -> VarId {
        self.program.vars.push(name.to_owned());
        VarId(self.program.vars.len() - 1)
    }

    fn push(&mut self, stmt: Stmt) -> StmtId {
        let id = StmtId(self.program.stmts.len());
        self.program.stmts.push(stmt);
        self.scopes
            .last_mut()
            .expect("builder always has an open scope")
            .push(id);
        id
    }

    /// Appends `var = expr`.
    pub fn assign(&mut self, var: VarId, expr: Expr) -> StmtId {
        self.push(Stmt::Assign { var, expr })
    }

    /// Appends `var = array[index]`.
    pub fn load(&mut self, var: VarId, array: ArrayId, index: Expr) -> StmtId {
        self.push(Stmt::Load { var, array, index })
    }

    /// Appends `array[index] = value`.
    pub fn store(&mut self, array: ArrayId, index: Expr, value: Expr) -> StmtId {
        self.push(Stmt::Store {
            array,
            index,
            value,
        })
    }

    /// Appends an opaque call.
    pub fn call(&mut self, name: &str, args: Vec<Expr>, effect: CallEffect) -> StmtId {
        self.push(Stmt::Call {
            name: name.to_owned(),
            args,
            effect,
        })
    }

    /// Appends an `if` whose arms are built by the closures.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.scopes.push(Vec::new());
        then_build(self);
        let then_body = self.scopes.pop().expect("then scope");
        self.scopes.push(Vec::new());
        else_build(self);
        let else_body = self.scopes.pop().expect("else scope");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Appends `for var in from..to { body }`.
    pub fn for_loop(
        &mut self,
        var: VarId,
        from: Expr,
        to: Expr,
        body_build: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.scopes.push(Vec::new());
        body_build(self);
        let body = self.scopes.pop().expect("loop scope");
        self.push(Stmt::For {
            var,
            from,
            to,
            body,
        })
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if called while a compound statement is still open (cannot
    /// happen through the closure-based API).
    pub fn finish(mut self) -> Program {
        assert_eq!(self.scopes.len(), 1, "unclosed scope");
        self.program.body = self.scopes.pop().expect("top-level scope");
        self.program
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn expr(p: &Program, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(c) => write!(f, "{c}"),
                Expr::Var(v) => write!(f, "{}", p.vars[v.0]),
                Expr::Bin(op, a, b) => {
                    let sym = match op {
                        BinOp::Add => "+",
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                        BinOp::Rem => "%",
                        BinOp::Lt => "<",
                        BinOp::Eq => "==",
                    };
                    write!(f, "(")?;
                    expr(p, a, f)?;
                    write!(f, " {sym} ")?;
                    expr(p, b, f)?;
                    write!(f, ")")
                }
            }
        }
        fn stmt(p: &Program, id: StmtId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match p.stmt(id) {
                Stmt::Assign { var, expr: e } => {
                    write!(f, "{pad}{} = ", p.vars[var.0])?;
                    expr(p, e, f)?;
                    writeln!(f)
                }
                Stmt::Load { var, array, index } => {
                    write!(f, "{pad}{} = {}[", p.vars[var.0], p.arrays[array.0].name)?;
                    expr(p, index, f)?;
                    writeln!(f, "]")
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    write!(f, "{pad}{}[", p.arrays[array.0].name)?;
                    expr(p, index, f)?;
                    write!(f, "] = ")?;
                    expr(p, value, f)?;
                    writeln!(f)
                }
                Stmt::Call { name, .. } => writeln!(f, "{pad}{name}(…)"),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    write!(f, "{pad}if ")?;
                    expr(p, cond, f)?;
                    writeln!(f, " {{")?;
                    for &s in then_body {
                        stmt(p, s, depth + 1, f)?;
                    }
                    if !else_body.is_empty() {
                        writeln!(f, "{pad}}} else {{")?;
                        for &s in else_body {
                            stmt(p, s, depth + 1, f)?;
                        }
                    }
                    writeln!(f, "{pad}}}")
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    write!(f, "{pad}for {} in ", p.vars[var.0])?;
                    expr(p, from, f)?;
                    write!(f, "..")?;
                    expr(p, to, f)?;
                    writeln!(f, " {{")?;
                    for &s in body {
                        stmt(p, s, depth + 1, f)?;
                    }
                    writeln!(f, "{pad}}}")
                }
            }
        }
        for &s in &self.body {
            stmt(self, s, 0, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_nests_statements() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 4);
        let i = b.var("i");
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(4), |b| {
            b.store(a, Expr::Var(i), Expr::Const(1));
        });
        let p = b.finish();
        assert_eq!(p.body(), &[outer]);
        assert_eq!(p.children(outer).len(), 1);
        assert_eq!(p.subtree(outer).len(), 2);
    }

    #[test]
    fn array_layout_is_contiguous() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 3);
        let c = b.array("C", 5);
        let p = b.finish();
        assert_eq!(p.array_base(a), 0);
        assert_eq!(p.array_base(c), 3);
        assert_eq!(p.memory_len(), 8);
    }

    #[test]
    fn subtree_is_preorder() {
        let mut b = ProgramBuilder::new();
        let i = b.var("i");
        let t = b.var("t");
        let outer = b.for_loop(i, Expr::Const(0), Expr::Const(2), |b| {
            b.assign(t, Expr::Const(1));
            b.if_else(
                Expr::Var(t),
                |b| {
                    b.assign(t, Expr::Const(2));
                },
                |_| {},
            );
        });
        let p = b.finish();
        let sub = p.subtree(outer);
        assert_eq!(sub[0], outer);
        assert_eq!(sub.len(), 4);
    }

    #[test]
    fn display_renders_structure() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 2);
        let i = b.var("i");
        b.for_loop(i, Expr::Const(0), Expr::Const(2), |b| {
            b.store(a, Expr::Var(i), Expr::Var(i));
        });
        let text = b.finish().to_string();
        assert!(text.contains("for i in 0..2"));
        assert!(text.contains("A[i] = i"));
    }

    #[test]
    fn expr_vars_collects_reads() {
        let e = Expr::add(
            Expr::Var(VarId(1)),
            Expr::mul(Expr::Var(VarId(2)), Expr::Const(3)),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec![VarId(1), VarId(2)]);
    }
}
