//! Tier-1 regression replay of the differential-fuzzing corpus, plus a
//! bounded seeded sweep.
//!
//! Every `corpus/*.case` entry — pinned anchors and minimized
//! counterexamples alike — must keep all engine paths in agreement with
//! the sequential oracle. The sweep re-checks a fixed window of generator
//! seeds on every test run, so the differential property itself (not just
//! the frozen cases) is part of tier 1.

use std::path::Path;

use crossinvoc_fuzz::{case_from_text, case_to_text, generate, load_corpus, run_case, GenParams};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_is_nonempty_and_parses() {
    let entries = load_corpus(&corpus_dir()).expect("corpus loads");
    assert!(
        !entries.is_empty(),
        "corpus/ must hold at least the pinned anchor cases"
    );
}

#[test]
fn every_corpus_entry_replays_clean() {
    for (path, case) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let report = run_case(&case);
        assert!(
            report.divergence.is_none(),
            "{} (seed {}) regressed: {:?}",
            path.display(),
            case.seed,
            report.divergence
        );
    }
}

#[test]
fn corpus_entries_round_trip_through_the_text_format() {
    for (path, case) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let text = case_to_text(&case).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let back = case_from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(back.program, case.program, "{}", path.display());
        assert_eq!(
            back.faults.specs(),
            case.faults.specs(),
            "{}",
            path.display()
        );
    }
}

#[test]
fn pinned_seeds_still_generate_their_checked_in_cases() {
    // A pinned anchor records the exact case its seed generated; if the
    // generator grammar changes shape under an existing seed, the pin
    // detects it (the corpus entry still replays on its own, so this is a
    // drift warning, not a correctness failure — refresh the entry with
    // `fuzz-diff --seed N --emit` after auditing the new shape).
    let params = GenParams::default();
    for (path, case) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let text = std::fs::read_to_string(&path).unwrap();
        if !text.starts_with("# pinned from fuzz-diff") {
            continue; // minimized counterexamples no longer match their seed
        }
        let regen = generate(case.seed, &params);
        assert_eq!(
            regen.program,
            case.program,
            "{}: generator drifted under seed {}",
            path.display(),
            case.seed
        );
        assert_eq!(
            regen.faults.specs(),
            case.faults.specs(),
            "{}: fault plan drifted under seed {}",
            path.display(),
            case.seed
        );
    }
}

#[test]
fn seeded_sweep_stays_divergence_free() {
    // A fixed 160-seed window (disjoint from the proptest windows in
    // tests/properties.rs) over the default fault mix.
    let params = GenParams::default();
    for seed in 10_000..10_160 {
        let case = generate(seed, &params);
        let report = run_case(&case);
        assert!(
            report.divergence.is_none(),
            "seed {seed} ({}): {:?} — reproduce with `fuzz-diff --seed {seed}`",
            case.note,
            report.divergence
        );
    }
}

#[test]
fn elision_anchors_are_pinned() {
    // The static-elision lanes rely on two standing anchors: a fully
    // provable cluster region and a mixed region interleaving proven and
    // unproven loops. Keep both pinned so `spec-elide`/`sim-elide` always
    // have a non-trivial corpus case to replay.
    let entries = load_corpus(&corpus_dir()).expect("corpus loads");
    let has = |pred: &dyn Fn(&str) -> bool| entries.iter().any(|(_, c)| pred(&c.note));
    assert!(
        has(&|n| n.contains("Cluster") && !n.contains("IndirectWatched")),
        "corpus must pin a fully-proven cluster-family anchor"
    );
    assert!(
        has(&|n| n.contains("IndirectWatched")),
        "corpus must pin a mixed proven+indirect anchor"
    );
}
