//! Execution statistics shared by the runtimes and the simulator.
//!
//! The evaluation chapter reports several derived quantities — number of
//! tasks, epochs and checking requests (Table 5.3), scheduler/worker ratio
//! (Table 5.2), barrier overhead percentage (Fig. 4.3). [`RegionStats`] is
//! the common container those experiments read out of any executor.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters describing one parallel region's execution.
#[derive(Debug, Default)]
pub struct RegionStats {
    tasks: AtomicU64,
    epochs: AtomicU64,
    check_requests: AtomicU64,
    sync_conditions: AtomicU64,
    misspeculations: AtomicU64,
    checkpoints: AtomicU64,
    stalls: AtomicU64,
}

macro_rules! counter {
    ($(#[$doc:meta])* $inc:ident, $get:ident, $field:ident) => {
        $(#[$doc])*
        pub fn $inc(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }

        /// Current value of the corresponding counter.
        pub fn $get(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        }
    };
}

impl RegionStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    counter!(
        /// Records completion of one task (inner-loop iteration).
        add_task, tasks, tasks
    );
    counter!(
        /// Records entry into one epoch (loop invocation).
        add_epoch, epochs, epochs
    );
    counter!(
        /// Records one signature-checking request sent to the checker.
        add_check_request, check_requests, check_requests
    );
    counter!(
        /// Records one synchronization condition produced by the scheduler.
        add_sync_condition, sync_conditions, sync_conditions
    );
    counter!(
        /// Records one detected misspeculation (rollback).
        add_misspeculation, misspeculations, misspeculations
    );
    counter!(
        /// Records one checkpoint taken.
        add_checkpoint, checkpoints, checkpoints
    );
    counter!(
        /// Records one worker stall on a synchronization condition or gate.
        add_stall, stalls, stalls
    );

    /// Snapshot of all counters as a plain value.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            tasks: self.tasks(),
            epochs: self.epochs(),
            check_requests: self.check_requests(),
            sync_conditions: self.sync_conditions(),
            misspeculations: self.misspeculations(),
            checkpoints: self.checkpoints(),
            stalls: self.stalls(),
        }
    }
}

/// Plain-value snapshot of [`RegionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSummary {
    /// Tasks (inner-loop iterations) executed.
    pub tasks: u64,
    /// Epochs (loop invocations) entered.
    pub epochs: u64,
    /// Checking requests sent to the checker thread.
    pub check_requests: u64,
    /// Synchronization conditions produced by the DOMORE scheduler.
    pub sync_conditions: u64,
    /// Misspeculations detected.
    pub misspeculations: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Worker stalls.
    pub stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_independently() {
        let s = RegionStats::new();
        s.add_task();
        s.add_task();
        s.add_epoch();
        s.add_check_request();
        s.add_sync_condition();
        s.add_misspeculation();
        s.add_checkpoint();
        s.add_stall();
        let sum = s.summary();
        assert_eq!(sum.tasks, 2);
        assert_eq!(sum.epochs, 1);
        assert_eq!(sum.check_requests, 1);
        assert_eq!(sum.sync_conditions, 1);
        assert_eq!(sum.misspeculations, 1);
        assert_eq!(sum.checkpoints, 1);
        assert_eq!(sum.stalls, 1);
    }

    #[test]
    fn summary_of_fresh_stats_is_zero() {
        assert_eq!(RegionStats::new().summary(), StatsSummary::default());
    }

    #[test]
    fn counters_are_thread_safe() {
        use std::sync::Arc;
        let s = Arc::new(RegionStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add_task();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.tasks(), 4000);
    }
}
