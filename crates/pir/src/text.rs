//! Serde-free textual round-trip for [`Program`]s.
//!
//! The format exists for the fuzz corpus: counterexamples must be diffable,
//! hand-editable, and stable across toolchain versions, so the grammar is a
//! deliberately small line-based form with s-expression scalars:
//!
//! ```text
//! # pir v1
//! array A 16
//! var t
//! var i
//! var x
//! for t 0 4 {
//!   for i 0 8 {
//!     load x A (add i t)
//!     store A i (mul x 3)
//!   }
//! }
//! ```
//!
//! Statements: `let <var> <expr>`, `load <var> <array> <expr>`,
//! `store <array> <expr> <expr>`, `for <var> <expr> <expr> {`,
//! `if <expr> {` / `} else {`, and a bare `}` closing either. Expressions
//! are atoms (integer literals or declared names) or `(<op> <a> <b>)` with
//! ops `add sub mul div rem lt eq`. `#` lines and blank lines are ignored.
//!
//! [`from_text`] rebuilds the program through [`ProgramBuilder`], which
//! yields the same statement-arena order as the original construction
//! (children before parents, siblings in order), so
//! `from_text(&to_text(p)?) == p` for every builder-built program. Opaque
//! calls are not representable (the fuzzer never generates them);
//! [`to_text`] reports them as errors.

use std::collections::HashMap;

use crate::ir::{ArrayId, BinOp, Expr, Program, ProgramBuilder, Stmt, StmtId, VarId};

/// Renders `program` in the corpus text format.
///
/// # Errors
///
/// Returns a message if the program contains a [`Stmt::Call`] (not
/// representable) or a declared name that is not a plain identifier or is
/// duplicated (names are the identity carrier in the text form).
pub fn to_text(program: &Program) -> Result<String, String> {
    let mut seen = HashMap::new();
    for (i, a) in program.arrays().iter().enumerate() {
        check_name(&a.name)?;
        if seen.insert(a.name.clone(), ()).is_some() {
            return Err(format!("duplicate declared name {:?}", a.name));
        }
        let _ = i;
    }
    for v in program.vars() {
        check_name(v)?;
        if seen.insert(v.clone(), ()).is_some() {
            return Err(format!("duplicate declared name {v:?}"));
        }
    }
    let mut out = String::from("# pir v1\n");
    for a in program.arrays() {
        out.push_str(&format!("array {} {}\n", a.name, a.len));
    }
    for v in program.vars() {
        out.push_str(&format!("var {v}\n"));
    }
    for &s in program.body() {
        write_stmt(program, s, 0, &mut out)?;
    }
    Ok(out)
}

fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(format!("name {name:?} is not a plain identifier"))
    }
}

fn write_stmt(p: &Program, id: StmtId, depth: usize, out: &mut String) -> Result<(), String> {
    let pad = "  ".repeat(depth);
    match p.stmt(id) {
        Stmt::Assign { var, expr } => {
            out.push_str(&format!(
                "{pad}let {} {}\n",
                p.vars()[var.0],
                sexpr(p, expr)
            ));
        }
        Stmt::Load { var, array, index } => {
            out.push_str(&format!(
                "{pad}load {} {} {}\n",
                p.vars()[var.0],
                p.arrays()[array.0].name,
                sexpr(p, index)
            ));
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            out.push_str(&format!(
                "{pad}store {} {} {}\n",
                p.arrays()[array.0].name,
                sexpr(p, index),
                sexpr(p, value)
            ));
        }
        Stmt::Call { name, .. } => {
            return Err(format!("opaque call {name:?} has no text form"));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str(&format!("{pad}if {} {{\n", sexpr(p, cond)));
            for &s in then_body {
                write_stmt(p, s, depth + 1, out)?;
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for &s in else_body {
                write_stmt(p, s, depth + 1, out)?;
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Stmt::For {
            var,
            from,
            to,
            body,
        } => {
            out.push_str(&format!(
                "{pad}for {} {} {} {{\n",
                p.vars()[var.0],
                sexpr(p, from),
                sexpr(p, to)
            ));
            for &s in body {
                write_stmt(p, s, depth + 1, out)?;
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
    Ok(())
}

fn sexpr(p: &Program, e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Var(v) => p.vars()[v.0].clone(),
        Expr::Bin(op, a, b) => {
            let name = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                BinOp::Rem => "rem",
                BinOp::Lt => "lt",
                BinOp::Eq => "eq",
            };
            format!("({name} {} {})", sexpr(p, a), sexpr(p, b))
        }
    }
}

/// Statement tree as parsed, before the builder pass assigns arena ids.
enum Node {
    Assign(VarId, Expr),
    Load(VarId, ArrayId, Expr),
    Store(ArrayId, Expr, Expr),
    If(Expr, Vec<Node>, Vec<Node>),
    For(VarId, Expr, Expr, Vec<Node>),
}

/// Parses the [`to_text`] format back into a [`Program`].
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input,
/// undeclared names, or declarations appearing after the first statement.
pub fn from_text(text: &str) -> Result<Program, String> {
    let mut b = ProgramBuilder::new();
    let mut arrays: HashMap<String, ArrayId> = HashMap::new();
    let mut vars: HashMap<String, VarId> = HashMap::new();

    // Frames of (body-so-far); `If` keeps then/else in a side slot.
    enum Frame {
        If(Expr, Option<Vec<Node>>),
        For(VarId, Expr, Expr),
    }
    let mut body_stack: Vec<Vec<Node>> = vec![Vec::new()];
    let mut frames: Vec<Frame> = Vec::new();
    let mut decls_done = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = tokenize(line);
        let mut t = Tokens::new(&toks);
        let head = t.next().expect("non-blank line has a token");
        match head {
            "array" | "var" if decls_done => {
                return Err(err("declarations must precede statements".into()));
            }
            "array" => {
                let name = t.next().ok_or_else(|| err("array needs a name".into()))?;
                check_name(name).map_err(err)?;
                let len: usize = t
                    .next()
                    .and_then(|l| l.parse().ok())
                    .ok_or_else(|| err("array needs a length".into()))?;
                if arrays.contains_key(name) || vars.contains_key(name) {
                    return Err(err(format!("duplicate declared name {name:?}")));
                }
                arrays.insert(name.to_owned(), b.array(name, len));
            }
            "var" => {
                let name = t.next().ok_or_else(|| err("var needs a name".into()))?;
                check_name(name).map_err(err)?;
                if arrays.contains_key(name) || vars.contains_key(name) {
                    return Err(err(format!("duplicate declared name {name:?}")));
                }
                vars.insert(name.to_owned(), b.var(name));
            }
            "let" => {
                decls_done = true;
                let var = lookup(&vars, t.next(), "let").map_err(err)?;
                let expr = parse_expr(&mut t, &vars).map_err(err)?;
                t.done().map_err(err)?;
                body_stack.last_mut().unwrap().push(Node::Assign(var, expr));
            }
            "load" => {
                decls_done = true;
                let var = lookup(&vars, t.next(), "load").map_err(err)?;
                let array = lookup(&arrays, t.next(), "load").map_err(err)?;
                let index = parse_expr(&mut t, &vars).map_err(err)?;
                t.done().map_err(err)?;
                body_stack
                    .last_mut()
                    .unwrap()
                    .push(Node::Load(var, array, index));
            }
            "store" => {
                decls_done = true;
                let array = lookup(&arrays, t.next(), "store").map_err(err)?;
                let index = parse_expr(&mut t, &vars).map_err(err)?;
                let value = parse_expr(&mut t, &vars).map_err(err)?;
                t.done().map_err(err)?;
                body_stack
                    .last_mut()
                    .unwrap()
                    .push(Node::Store(array, index, value));
            }
            "for" => {
                decls_done = true;
                let var = lookup(&vars, t.next(), "for").map_err(err)?;
                let from = parse_expr(&mut t, &vars).map_err(err)?;
                let to = parse_expr(&mut t, &vars).map_err(err)?;
                t.expect("{").map_err(err)?;
                t.done().map_err(err)?;
                frames.push(Frame::For(var, from, to));
                body_stack.push(Vec::new());
            }
            "if" => {
                decls_done = true;
                let cond = parse_expr(&mut t, &vars).map_err(err)?;
                t.expect("{").map_err(err)?;
                t.done().map_err(err)?;
                frames.push(Frame::If(cond, None));
                body_stack.push(Vec::new());
            }
            "}" => {
                let else_follows = match t.next() {
                    None => false,
                    Some("else") => {
                        t.expect("{").map_err(err)?;
                        t.done().map_err(err)?;
                        true
                    }
                    Some(other) => return Err(err(format!("unexpected {other:?} after `}}`"))),
                };
                let closed = body_stack.pop().unwrap();
                let frame = frames
                    .pop()
                    .ok_or_else(|| err("unmatched closing brace".into()))?;
                match (frame, else_follows) {
                    (Frame::If(cond, None), true) => {
                        frames.push(Frame::If(cond, Some(closed)));
                        body_stack.push(Vec::new());
                    }
                    (Frame::If(cond, None), false) => {
                        body_stack
                            .last_mut()
                            .unwrap()
                            .push(Node::If(cond, closed, Vec::new()));
                    }
                    (Frame::If(cond, Some(then_body)), false) => {
                        body_stack
                            .last_mut()
                            .unwrap()
                            .push(Node::If(cond, then_body, closed));
                    }
                    (Frame::If(_, Some(_)), true) => {
                        return Err(err("an `if` has at most one `else`".into()));
                    }
                    (Frame::For(var, from, to), false) => {
                        body_stack
                            .last_mut()
                            .unwrap()
                            .push(Node::For(var, from, to, closed));
                    }
                    (Frame::For(..), true) => {
                        return Err(err("`else` cannot follow a `for` body".into()));
                    }
                }
            }
            other => return Err(err(format!("unknown statement {other:?}"))),
        }
    }
    if !frames.is_empty() {
        return Err("unclosed block at end of input".into());
    }
    let top = body_stack.pop().unwrap();
    emit(&mut b, &top);
    Ok(b.finish())
}

fn emit(b: &mut ProgramBuilder, nodes: &[Node]) {
    for node in nodes {
        match node {
            Node::Assign(var, expr) => {
                b.assign(*var, expr.clone());
            }
            Node::Load(var, array, index) => {
                b.load(*var, *array, index.clone());
            }
            Node::Store(array, index, value) => {
                b.store(*array, index.clone(), value.clone());
            }
            Node::If(cond, then_body, else_body) => {
                b.if_else(cond.clone(), |b| emit(b, then_body), |b| emit(b, else_body));
            }
            Node::For(var, from, to, body) => {
                b.for_loop(*var, from.clone(), to.clone(), |b| emit(b, body));
            }
        }
    }
}

fn lookup<T: Copy>(map: &HashMap<String, T>, name: Option<&str>, stmt: &str) -> Result<T, String> {
    let name = name.ok_or_else(|| format!("`{stmt}` is missing a name"))?;
    map.get(name)
        .copied()
        .ok_or_else(|| format!("undeclared name {name:?}"))
}

fn tokenize(line: &str) -> Vec<String> {
    line.replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

struct Tokens<'a> {
    toks: &'a [String],
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(toks: &'a [String]) -> Self {
        Self { toks, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.toks.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn expect(&mut self, want: &str) -> Result<(), String> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(format!("expected {want:?}, got {other:?}")),
        }
    }

    fn done(&mut self) -> Result<(), String> {
        match self.next() {
            None => Ok(()),
            Some(t) => Err(format!("trailing token {t:?}")),
        }
    }
}

fn parse_expr(t: &mut Tokens<'_>, vars: &HashMap<String, VarId>) -> Result<Expr, String> {
    let tok = t
        .next()
        .ok_or_else(|| "expected an expression".to_owned())?;
    if tok == "(" {
        let op = match t.next() {
            Some("add") => BinOp::Add,
            Some("sub") => BinOp::Sub,
            Some("mul") => BinOp::Mul,
            Some("div") => BinOp::Div,
            Some("rem") => BinOp::Rem,
            Some("lt") => BinOp::Lt,
            Some("eq") => BinOp::Eq,
            other => return Err(format!("unknown operator {other:?}")),
        };
        let a = parse_expr(t, vars)?;
        let b = parse_expr(t, vars)?;
        t.expect(")")?;
        Ok(Expr::Bin(op, Box::new(a), Box::new(b)))
    } else if let Ok(c) = tok.parse::<i64>() {
        Ok(Expr::Const(c))
    } else {
        vars.get(tok)
            .map(|&v| Expr::Var(v))
            .ok_or_else(|| format!("undeclared variable {tok:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CallEffect;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 16);
        let idx = b.array("IDX", 8);
        let t = b.var("t");
        let i = b.var("i");
        let x = b.var("x");
        let s = b.var("s");
        b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
            b.store(
                idx,
                Expr::Var(i),
                Expr::rem(Expr::mul(Expr::Var(i), Expr::Const(3)), Expr::Const(16)),
            );
        });
        b.for_loop(t, Expr::Const(0), Expr::Const(4), |b| {
            b.assign(s, Expr::rem(Expr::Var(t), Expr::Const(3)));
            b.for_loop(i, Expr::Const(0), Expr::Const(8), |b| {
                b.load(x, a, Expr::add(Expr::Var(i), Expr::Var(s)));
                b.if_else(
                    Expr::lt(Expr::Var(x), Expr::Const(100)),
                    |b| {
                        b.store(
                            a,
                            Expr::Var(i),
                            Expr::add(Expr::mul(Expr::Var(x), Expr::Const(3)), Expr::Var(i)),
                        );
                    },
                    |b| {
                        b.store(a, Expr::Var(i), Expr::Const(0));
                    },
                );
            });
        });
        b.finish()
    }

    #[test]
    fn round_trip_is_identity() {
        let p = sample();
        let text = to_text(&p).unwrap();
        let back = from_text(&text).unwrap();
        assert_eq!(p, back, "round-trip must preserve the arena:\n{text}");
        // And the text itself is a fixed point.
        assert_eq!(text, to_text(&back).unwrap());
    }

    #[test]
    fn parses_if_without_else_and_nested_loops() {
        let text = "array A 4\nvar i\nfor i 0 4 {\n  if (lt i 2) {\n    store A i 1\n  }\n}\n";
        let p = from_text(text).unwrap();
        assert_eq!(p.body().len(), 1);
        // Writer always emits the else arm; re-parse must agree.
        assert_eq!(p, from_text(&to_text(&p).unwrap()).unwrap());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("frob A 3").is_err(), "unknown statement");
        assert!(from_text("var i\nlet j 3").is_err(), "undeclared name");
        assert!(from_text("var i\nfor i 0 4 {").is_err(), "unclosed block");
        assert!(from_text("var i\nlet i 3\nvar j").is_err(), "late decl");
        assert!(from_text("var i\nlet i (frob 1 2)").is_err(), "bad op");
        assert!(from_text("array A 4\narray A 4").is_err(), "duplicate");
    }

    #[test]
    fn calls_are_rejected_by_the_writer() {
        let mut b = ProgramBuilder::new();
        b.call("update", vec![], CallEffect::default());
        let p = b.finish();
        assert!(to_text(&p).is_err());
    }
}
