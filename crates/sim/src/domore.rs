//! Simulated DOMORE execution (Fig. 3.2(b)/(c), §3.4).
//!
//! The scheduler timeline runs the *real* shadow-memory logic
//! ([`crossinvoc_domore::SchedulerLogic`]) and the real assignment policy
//! over the workload's actual address streams, so the synchronization
//! conditions — and therefore who waits on whom — are exactly what the
//! threaded runtime would produce. The simulator adds time: prologue and
//! per-iteration scheduling cost on the scheduler's clock, queue latency on
//! dispatch, kernel cost on the assigned worker's clock, and dependence
//! stalls whenever a synchronization condition's source has not yet
//! finished.

use crossinvoc_domore::logic::{SchedulerLogic, SyncCondition};
use crossinvoc_domore::memo::{ReplayStep, ScheduleMemo};
use crossinvoc_domore::policy::Policy;
use crossinvoc_runtime::stats::RegionStats;
use crossinvoc_runtime::trace::{Event, WakeEdge, MANAGER_TID};

use crate::cost::CostModel;
use crate::result::SimResult;
use crate::tracing::SimSinks;
use crate::workload::SimWorkload;

fn make_logic<W: SimWorkload + ?Sized>(workload: &W) -> SchedulerLogic {
    match workload.address_space() {
        Some(n) => SchedulerLogic::with_dense_shadow(n),
        None => SchedulerLogic::with_sparse_shadow(),
    }
}

/// Flattens an access list into the address vector handed to the policy
/// and the shadow logic — writes first, because LOCALWRITE-style policies
/// assign ownership by the first address and owner-computes means the
/// *written* cell's owner.
fn split_accesses(
    pairs: &[(usize, crossinvoc_runtime::signature::AccessKind)],
    writes: &mut Vec<usize>,
    reads: &mut Vec<usize>,
    addrs: &mut Vec<usize>,
) {
    use crossinvoc_runtime::signature::AccessKind;
    writes.clear();
    reads.clear();
    for &(a, k) in pairs {
        match k {
            AccessKind::Write => writes.push(a),
            AccessKind::Read => reads.push(a),
        }
    }
    addrs.clear();
    addrs.extend_from_slice(writes);
    addrs.extend_from_slice(reads);
}

/// Simulates DOMORE with a dedicated scheduler thread and `workers` worker
/// threads (the final plan of Fig. 3.2(c)).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn domore<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
) -> SimResult {
    domore_configured(workload, workers, policy, cost, None, true)
}

/// Like [`domore`], but optionally records a virtual-time execution trace
/// (the shared JSONL schema of `docs/OBSERVABILITY.md`) with
/// `trace_capacity` records per simulated thread. Scheduler events carry
/// the manager pseudo thread-id; worker condition waits appear as
/// barrier-enter/leave pairs, exactly as in the threaded runtime.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn domore_traced<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
    trace_capacity: Option<usize>,
) -> SimResult {
    domore_configured(workload, workers, policy, cost, trace_capacity, true)
}

/// Models the delivery of one scheduled iteration: the condition stalls,
/// the queue hand-off and the kernel itself, on the assigned worker's
/// clock. Both the memo-replayed and the recomputed scheduling path
/// deliver through here, so the two timelines differ only in scheduler
/// cost — never in who waits on whom.
#[allow(clippy::too_many_arguments)]
fn deliver(
    stats: &RegionStats,
    sinks: &mut SimSinks,
    clocks: &mut [u64],
    busy: &mut [u64],
    idle: &mut [u64],
    finish_times: &mut Vec<u64>,
    arrival: u64,
    work: u64,
    tid: usize,
    inv: usize,
    iter: usize,
    iter_num: u64,
    conds: &[SyncCondition],
) {
    let wait_from = arrival.max(clocks[tid]);
    let mut release = wait_from;
    // The condition whose source finished last binds the wait — the
    // source of the release causality edge.
    let mut binding: Option<&SyncCondition> = None;
    for cond in conds {
        stats.add_sync_condition();
        let dep_finish = finish_times[cond.dep_iter as usize];
        if dep_finish > release {
            stats.add_stall();
            release = dep_finish;
            binding = Some(cond);
        }
    }
    if release > wait_from {
        // A synchronization-condition wait: the threaded worker's
        // barrier-enter/leave pair around `await_condition`.
        sinks.workers[tid].emit_at(wait_from, Event::BarrierEnter { epoch: inv as u32 });
        sinks.workers[tid].emit_at(
            release,
            Event::BarrierLeave {
                epoch: inv as u32,
                wait_ns: release - wait_from,
            },
        );
        if let Some(cond) = binding {
            sinks.workers[tid].emit_at(
                release,
                Event::Wake {
                    edge: WakeEdge::Barrier,
                    src_tid: cond.dep_tid,
                    seq: cond.dep_iter,
                },
            );
        }
    }
    idle[tid] += release - clocks[tid].min(release);
    busy[tid] += work;
    // SPSC produce → consume: the worker picks the scheduler's
    // message up at dispatch.
    sinks.workers[tid].emit_at(
        release,
        Event::Wake {
            edge: WakeEdge::Queue,
            src_tid: MANAGER_TID,
            seq: iter_num,
        },
    );
    sinks.workers[tid].emit_at(
        release,
        Event::TaskDispatch {
            epoch: inv as u32,
            task: iter as u64,
        },
    );
    clocks[tid] = release + work;
    sinks.workers[tid].emit_at(
        clocks[tid],
        Event::TaskRetire {
            epoch: inv as u32,
            task: iter as u64,
        },
    );
    finish_times.push(clocks[tid]);
    stats.add_task();
}

/// [`domore_traced`] with the cross-invocation schedule memo switchable
/// (`schedule_memo = false` is the recompute-every-invocation baseline).
/// Replayed invocations skip the shadow walk — the scheduler pays only the
/// `computeAddr`/verification half of its per-iteration cost — and emit
/// one [`Event::ScheduleCacheHit`]; decisions are identical either way.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn domore_configured<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
    trace_capacity: Option<usize>,
    schedule_memo: bool,
) -> SimResult {
    domore_in_region(
        workload,
        workers,
        policy,
        cost,
        trace_capacity,
        schedule_memo,
        0,
    )
}

/// [`domore_configured`] with the trace attributed to a region-server
/// submission id, mirroring the threaded runtime's `DomoreConfig::region`:
/// `region_id = 0` (solo) emits the exact pre-region JSONL bytes, any other
/// id stamps `region_id` on every record — so simulated and threaded
/// regions of the same id are schema-identical.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[allow(clippy::too_many_arguments)]
pub fn domore_in_region<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
    trace_capacity: Option<usize>,
    schedule_memo: bool,
    region_id: u64,
) -> SimResult {
    assert!(workers > 0, "at least one worker is required");
    let stats = RegionStats::new();
    let mut sinks = SimSinks::new(workers, 0, trace_capacity.unwrap_or(0)).region(region_id);
    let mut logic = make_logic(workload);
    let mut memo = ScheduleMemo::new();
    let mut sched_clock = 0u64;
    let mut clocks = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut idle = vec![0u64; workers];
    let mut finish_times: Vec<u64> = Vec::new();
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    let mut addrs = Vec::new();
    let mut pairs = Vec::new();
    let mut conds = Vec::new();

    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        sched_clock += workload.prologue_cost(inv);
        sinks
            .manager
            .emit_at(sched_clock, Event::EpochBegin { epoch: inv as u32 });
        let iters = workload.num_iterations(inv);
        let base = logic.next_iter_num();
        let mut iter = 0;
        // Worker already assigned to the iteration a replay diverged on
        // (the policy has advanced past it; see the threaded runtime).
        let mut carried_tid = None;
        if memo.begin_invocation(iters, base, schedule_memo) {
            while iter < iters {
                pairs.clear();
                workload.accesses(inv, iter, &mut pairs);
                split_accesses(&pairs, &mut writes, &mut reads, &mut addrs);
                let tid = policy.assign(base + iter as u64, &addrs, workers);
                match memo.replay_step(iter, &writes, &reads, tid) {
                    ReplayStep::Match {
                        tid,
                        iter_num,
                        conds,
                    } => {
                        // The shadow walk is skipped; `computeAddr` and the
                        // fingerprint verification still run.
                        sched_clock += workload.sched_cost(inv, iter) / 2 + cost.queue_ns;
                        sinks.manager.emit_at(
                            sched_clock,
                            Event::TaskAssign {
                                epoch: inv as u32,
                                task: iter as u64,
                                worker: tid,
                            },
                        );
                        let work = cost.task_overhead_ns + workload.iteration_cost(inv, iter);
                        deliver(
                            &stats,
                            &mut sinks,
                            &mut clocks,
                            &mut busy,
                            &mut idle,
                            &mut finish_times,
                            sched_clock + cost.queue_ns,
                            work,
                            tid,
                            inv,
                            iter,
                            iter_num,
                            conds,
                        );
                        iter += 1;
                    }
                    ReplayStep::Diverged => {
                        // Rebuild the shadow for the dispatched prefix; its
                        // conditions were already delivered correctly.
                        for k in 0..iter {
                            pairs.clear();
                            workload.accesses(inv, k, &mut pairs);
                            split_accesses(&pairs, &mut writes, &mut reads, &mut addrs);
                            conds.clear();
                            let _ = logic.schedule_rw(
                                memo.recorded_tid(k),
                                &writes,
                                &reads,
                                &mut conds,
                            );
                        }
                        carried_tid = Some(tid);
                        break;
                    }
                }
            }
        }
        while iter < iters {
            // computeAddr + conflict detection + the produce() call.
            sched_clock += workload.sched_cost(inv, iter) + cost.queue_ns;
            pairs.clear();
            workload.accesses(inv, iter, &mut pairs);
            split_accesses(&pairs, &mut writes, &mut reads, &mut addrs);
            let preview = logic.next_iter_num();
            let tid = match carried_tid.take() {
                Some(t) => t,
                None => policy.assign(preview, &addrs, workers),
            };
            sinks.manager.emit_at(
                sched_clock,
                Event::TaskAssign {
                    epoch: inv as u32,
                    task: iter as u64,
                    worker: tid,
                },
            );
            conds.clear();
            let iter_num = logic.schedule_rw(tid, &writes, &reads, &mut conds);
            debug_assert_eq!(iter_num, preview);
            memo.record_step(&writes, &reads, tid, &conds);
            let work = cost.task_overhead_ns + workload.iteration_cost(inv, iter);
            deliver(
                &stats,
                &mut sinks,
                &mut clocks,
                &mut busy,
                &mut idle,
                &mut finish_times,
                sched_clock + cost.queue_ns,
                work,
                tid,
                inv,
                iter,
                iter_num,
                &conds,
            );
            iter += 1;
        }
        if memo.end_invocation(&mut logic) {
            stats.add_schedule_cache_hit();
            sinks
                .manager
                .emit_at(sched_clock, Event::ScheduleCacheHit { epoch: inv as u32 });
        }
        sinks
            .manager
            .emit_at(sched_clock, Event::EpochEnd { epoch: inv as u32 });
    }

    let total = clocks.iter().copied().max().unwrap_or(0).max(sched_clock);
    SimResult {
        total_ns: total,
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: sinks.finish(),
    }
}

/// Simulates DOMORE applied *within* invocations only: the scheduler
/// pipeline runs as in [`domore`], but a global barrier is restored at every
/// invocation boundary (the "DOMORE + Barrier" plan of the Fig. 5.6 case
/// study — runtime scheduling without cross-invocation overlap).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn domore_barriered<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
) -> SimResult {
    assert!(workers > 0, "at least one worker is required");
    let stats = RegionStats::new();
    let mut logic = make_logic(workload);
    let mut sched_clock = 0u64;
    let mut clocks = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut idle = vec![0u64; workers];
    let mut finish_times: Vec<u64> = Vec::new();
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    let mut addrs = Vec::new();
    let mut pairs = Vec::new();
    let mut conds = Vec::new();

    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        sched_clock += workload.prologue_cost(inv);
        for iter in 0..workload.num_iterations(inv) {
            // computeAddr + conflict detection + the produce() call.
            sched_clock += workload.sched_cost(inv, iter) + cost.queue_ns;
            pairs.clear();
            workload.accesses(inv, iter, &mut pairs);
            split_accesses(&pairs, &mut writes, &mut reads, &mut addrs);
            let preview = logic.next_iter_num();
            let tid = policy.assign(preview, &addrs, workers);
            conds.clear();
            logic.schedule_rw(tid, &writes, &reads, &mut conds);
            let arrival = sched_clock + cost.queue_ns;
            let mut release = arrival.max(clocks[tid]);
            for cond in &conds {
                stats.add_sync_condition();
                release = release.max(finish_times[cond.dep_iter as usize]);
            }
            idle[tid] += release - clocks[tid].min(release);
            let work = cost.task_overhead_ns + workload.iteration_cost(inv, iter);
            busy[tid] += work;
            clocks[tid] = release + work;
            finish_times.push(clocks[tid]);
            stats.add_task();
        }
        // The restored barrier: everyone (the scheduler included) waits.
        let slowest = clocks.iter().copied().max().unwrap_or(0).max(sched_clock);
        for (clock, i) in clocks.iter_mut().zip(idle.iter_mut()) {
            *i += slowest - *clock;
            *clock = slowest + cost.barrier_ns(workers + 1);
        }
        sched_clock = slowest + cost.barrier_ns(workers + 1);
    }

    SimResult {
        total_ns: clocks.iter().copied().max().unwrap_or(0).max(sched_clock),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

/// Simulates the duplicated-scheduler variant (§3.4): every worker replays
/// the full scheduling loop (prologue and per-iteration scheduling cost are
/// paid redundantly by all workers) and executes only its own iterations.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn domore_duplicated<W: SimWorkload + ?Sized>(
    workload: &W,
    workers: usize,
    policy: &mut dyn Policy,
    cost: &CostModel,
) -> SimResult {
    assert!(workers > 0, "at least one worker is required");
    let stats = RegionStats::new();
    let mut logic = make_logic(workload);
    let mut clocks = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut idle = vec![0u64; workers];
    let mut finish_times: Vec<u64> = Vec::new();
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    let mut addrs = Vec::new();
    let mut pairs = Vec::new();
    let mut conds = Vec::new();

    for inv in 0..workload.num_invocations() {
        stats.add_epoch();
        let prologue = workload.prologue_cost(inv);
        for (clock, b) in clocks.iter_mut().zip(busy.iter_mut()) {
            *clock += prologue;
            *b += prologue;
        }
        for iter in 0..workload.num_iterations(inv) {
            let sched = workload.sched_cost(inv, iter);
            for (clock, b) in clocks.iter_mut().zip(busy.iter_mut()) {
                *clock += sched;
                *b += sched;
            }
            pairs.clear();
            workload.accesses(inv, iter, &mut pairs);
            split_accesses(&pairs, &mut writes, &mut reads, &mut addrs);
            let preview = logic.next_iter_num();
            let tid = policy.assign(preview, &addrs, workers);
            conds.clear();
            logic.schedule_rw(tid, &writes, &reads, &mut conds);

            let mut release = clocks[tid];
            for cond in &conds {
                stats.add_sync_condition();
                let dep_finish = finish_times[cond.dep_iter as usize];
                if dep_finish > release {
                    stats.add_stall();
                    release = dep_finish;
                }
            }
            idle[tid] += release - clocks[tid];
            let work = cost.task_overhead_ns + workload.iteration_cost(inv, iter);
            busy[tid] += work;
            clocks[tid] = release + work;
            finish_times.push(clocks[tid]);
            stats.add_task();
        }
    }

    SimResult {
        total_ns: clocks.iter().copied().max().unwrap_or(0),
        busy_ns: busy,
        idle_ns: idle,
        stats: stats.summary(),
        degraded: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::barrier;
    use crate::seq::sequential;
    use crate::workload::UniformWorkload;
    use crossinvoc_domore::policy::{LocalWrite, RoundRobin};

    #[test]
    fn independent_work_scales() {
        let w = UniformWorkload::independent(50, 64, 10_000).with_sched_cost(50);
        let seq = sequential(&w, &CostModel::default());
        let r = domore(&w, 8, &mut RoundRobin, &CostModel::default());
        let speedup = r.speedup_over(seq.total_ns);
        assert!(speedup > 6.0, "near-linear expected, got {speedup}");
        assert_eq!(r.stats.sync_conditions, 0);
    }

    #[test]
    fn beats_barrier_on_many_small_invocations() {
        // The motivating scenario: many invocations, iterations that can
        // flow across invocation boundaries.
        let w = UniformWorkload::same_cell(500, 24, 2_000).with_sched_cost(50);
        let seq = sequential(&w, &CostModel::default());
        let bar = barrier(&w, 8, &CostModel::default());
        let dom = domore(&w, 8, &mut RoundRobin, &CostModel::default());
        assert!(
            dom.speedup_over(seq.total_ns) > bar.speedup_over(seq.total_ns),
            "DOMORE {} must beat barrier {}",
            dom.speedup_over(seq.total_ns),
            bar.speedup_over(seq.total_ns)
        );
    }

    #[test]
    fn rotating_conflicts_generate_conditions_and_stalls() {
        let w = UniformWorkload::rotating(50, 16, 3_000);
        let r = domore(&w, 4, &mut RoundRobin, &CostModel::default());
        assert!(r.stats.sync_conditions > 0);
    }

    #[test]
    fn localwrite_policy_eliminates_conditions_for_fixed_cells() {
        let w = UniformWorkload::same_cell(50, 16, 3_000);
        let r = domore(&w, 4, &mut LocalWrite::new(16), &CostModel::default());
        assert_eq!(r.stats.sync_conditions, 0);
    }

    #[test]
    fn heavy_scheduler_limits_scaling() {
        // Scheduler slice ≈ kernel cost: the scheduler serializes the region
        // (the ECLAT/FLUIDANIMATE observation of §5.1).
        let w = UniformWorkload::independent(100, 24, 1_000).with_sched_cost(900);
        let seq = sequential(&w, &CostModel::default());
        let s8 = domore(&w, 8, &mut RoundRobin, &CostModel::default());
        let s16 = domore(&w, 16, &mut RoundRobin, &CostModel::default());
        let (a, b) = (
            s8.speedup_over(seq.total_ns),
            s16.speedup_over(seq.total_ns),
        );
        assert!(b < a * 1.2, "scheduler-bound: {a} vs {b}");
    }

    #[test]
    fn barriered_domore_is_no_faster_than_full_domore() {
        let w = UniformWorkload::same_cell(200, 24, 2_000).with_sched_cost(50);
        let full = domore(&w, 8, &mut RoundRobin, &CostModel::default());
        let barriered = domore_barriered(&w, 8, &mut RoundRobin, &CostModel::default());
        assert!(barriered.total_ns >= full.total_ns);
        assert_eq!(barriered.stats.tasks, full.stats.tasks);
    }

    #[test]
    fn duplicated_scheduler_pays_redundant_scheduling() {
        let w = UniformWorkload::independent(50, 32, 1_000).with_sched_cost(400);
        let seq = sequential(&w, &CostModel::default());
        let sep = domore(&w, 6, &mut RoundRobin, &CostModel::default());
        let dup = domore_duplicated(&w, 6, &mut RoundRobin, &CostModel::default());
        // Redundant scheduling makes the duplicated variant slower here
        // (every worker pays the full scheduling stream).
        assert!(dup.total_ns >= sep.total_ns);
        assert!(dup.speedup_over(seq.total_ns) > 1.0);
    }

    #[test]
    fn single_worker_matches_serialized_cost() {
        let w = UniformWorkload::independent(3, 4, 100).with_sched_cost(10);
        let free = CostModel::free();
        let r = domore(&w, 1, &mut RoundRobin, &free);
        // Scheduler and worker pipeline: worker finishes after all work.
        assert!(r.total_ns >= 12 * 100);
        assert_eq!(r.stats.tasks, 12);
    }

    #[test]
    fn traced_run_emits_dispatches_and_condition_waits() {
        use crossinvoc_runtime::trace::{Event, Trace, TraceReport};
        let w = UniformWorkload::rotating(50, 16, 3_000);
        let r = domore_traced(&w, 4, &mut RoundRobin, &CostModel::default(), Some(1 << 14));
        let trace = r.trace.expect("tracing was requested");
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("valid JSONL");
        assert_eq!(parsed, trace);
        let report = TraceReport::from_trace(&trace);
        let tasks: u64 = report.threads.iter().map(|t| t.tasks).sum();
        assert_eq!(tasks, r.stats.tasks);
        if r.stats.stalls > 0 {
            assert!(trace
                .records()
                .iter()
                .any(|rec| matches!(rec.event, Event::BarrierLeave { .. })));
        }
        // The untraced entry point stays trace-free.
        assert!(domore(&w, 4, &mut RoundRobin, &CostModel::default())
            .trace
            .is_none());
    }

    #[test]
    fn steady_invocations_replay_from_the_memo() {
        use crossinvoc_runtime::trace::TraceReport;
        // Scheduler-bound, identical stream every invocation, iteration
        // count divisible by the worker count: invocation 0 seeds the
        // fingerprint, 1 records, 2.. replay at half the scheduling cost.
        let w = UniformWorkload::same_cell(50, 16, 1_000).with_sched_cost(900);
        let on = domore_traced(&w, 8, &mut RoundRobin, &CostModel::default(), Some(1 << 15));
        let off = domore_configured(&w, 8, &mut RoundRobin, &CostModel::default(), None, false);
        assert_eq!(on.stats.schedule_cache_hits, 48);
        assert_eq!(off.stats.schedule_cache_hits, 0);
        assert_eq!(on.stats.tasks, off.stats.tasks);
        assert_eq!(on.stats.sync_conditions, off.stats.sync_conditions);
        assert!(
            on.total_ns < off.total_ns,
            "replay must relieve the scheduler bottleneck: {} vs {}",
            on.total_ns,
            off.total_ns
        );
        let report = TraceReport::from_trace(on.trace.as_ref().unwrap());
        assert_eq!(report.schedule_cache_hits, 48);
    }

    #[test]
    fn rotating_streams_never_replay() {
        // Rotation period 40 exceeds the memo's MAX_PERIOD (32): the
        // stream never promotes and every invocation schedules live.
        let w = UniformWorkload::rotating(90, 40, 3_000);
        let r = domore(&w, 4, &mut RoundRobin, &CostModel::default());
        assert_eq!(r.stats.schedule_cache_hits, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let w = UniformWorkload::independent(1, 1, 1);
        domore(&w, 0, &mut RoundRobin, &CostModel::default());
    }
}
