//! The workload model consumed by the simulator.
//!
//! A [`SimWorkload`] describes a loop nest *as data*: how many invocations
//! (epochs), how many iterations (tasks) each has, how long each iteration
//! takes, which shared addresses it touches, and the cost of the sequential
//! prologue and of the per-iteration scheduling work (the `computeAddr` +
//! `schedule` slice DOMORE runs, whose weight Table 5.2 reports). The
//! benchmark crate derives these models from the same generated inputs its
//! real kernels run on, so the simulated dependence patterns are the real
//! ones.

use crossinvoc_runtime::signature::AccessKind;

/// A loop nest described for simulation.
pub trait SimWorkload {
    /// Number of outer-loop iterations (inner-loop invocations / epochs).
    fn num_invocations(&self) -> usize;

    /// Number of inner-loop iterations (tasks) in invocation `inv`.
    fn num_iterations(&self, inv: usize) -> usize;

    /// Cost, in simulated nanoseconds, of iteration `(inv, iter)`'s kernel.
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64;

    /// Shared accesses of iteration `(inv, iter)` that participate in
    /// cross-iteration/cross-invocation dependences. Appended to `out`
    /// (which arrives empty).
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>);

    /// Cost of the sequential code at the top of invocation `inv`
    /// (statements A–C of the CG example). Zero when the outer loop has no
    /// sequential section.
    fn prologue_cost(&self, inv: usize) -> u64 {
        let _ = inv;
        0
    }

    /// Cost of DOMORE's per-iteration scheduling slice (`computeAddr` +
    /// conflict detection + dispatch). Drives the scheduler/worker ratio of
    /// Table 5.2.
    fn sched_cost(&self, inv: usize, iter: usize) -> u64 {
        let _ = (inv, iter);
        50
    }

    /// Whether every access of invocation `inv`'s iterations is statically
    /// proven conflict-free against all compared tasks (the `pir::elide`
    /// analysis). When the simulation runs with
    /// [`crate::speccross::SpecSimParams::elide`], such iterations skip the
    /// simulated signature build, conflict scan, and checker billing; the
    /// default keeps every invocation on the full check path.
    fn invocation_is_proven(&self, inv: usize) -> bool {
        let _ = inv;
        false
    }

    /// Exclusive upper bound on reported addresses when dense shadow memory
    /// is profitable.
    fn address_space(&self) -> Option<usize> {
        None
    }

    /// Total iterations across all invocations.
    fn total_iterations(&self) -> u64 {
        (0..self.num_invocations())
            .map(|inv| self.num_iterations(inv) as u64)
            .sum()
    }

    /// Sum of all iteration costs, prologues excluded.
    fn total_work_ns(&self) -> u64 {
        (0..self.num_invocations())
            .map(|inv| {
                (0..self.num_iterations(inv))
                    .map(|i| self.iteration_cost(inv, i))
                    .sum::<u64>()
            })
            .sum()
    }
}

impl<W: SimWorkload + ?Sized> SimWorkload for Box<W> {
    fn num_invocations(&self) -> usize {
        (**self).num_invocations()
    }
    fn num_iterations(&self, inv: usize) -> usize {
        (**self).num_iterations(inv)
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        (**self).iteration_cost(inv, iter)
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        (**self).accesses(inv, iter, out)
    }
    fn prologue_cost(&self, inv: usize) -> u64 {
        (**self).prologue_cost(inv)
    }
    fn sched_cost(&self, inv: usize, iter: usize) -> u64 {
        (**self).sched_cost(inv, iter)
    }
    fn invocation_is_proven(&self, inv: usize) -> bool {
        (**self).invocation_is_proven(inv)
    }
    fn address_space(&self) -> Option<usize> {
        (**self).address_space()
    }
}

/// A synthetic workload with uniform structure, for tests and
/// micro-experiments.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    invocations: usize,
    iterations: usize,
    cost: u64,
    /// Address written by `(inv, iter)`; `None` means no shared accesses.
    addr_fn: AddrPattern,
    prologue: u64,
    sched: u64,
    proven: bool,
}

/// How iterations of a [`UniformWorkload`] touch shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrPattern {
    /// No shared accesses: every iteration independent of every other.
    Independent,
    /// Iteration `i` of every invocation writes cell `i`: per-cell chains
    /// across invocations.
    SameCell,
    /// Iteration `i` of invocation `k` writes cell `(i + k) % n`:
    /// cross-invocation conflicts move across workers.
    Rotating,
}

impl UniformWorkload {
    /// All iterations independent.
    pub fn independent(invocations: usize, iterations: usize, cost: u64) -> Self {
        Self {
            invocations,
            iterations,
            cost,
            addr_fn: AddrPattern::Independent,
            prologue: 0,
            sched: 50,
            proven: false,
        }
    }

    /// Iteration `i` of each invocation writes cell `i` (fixed chains).
    pub fn same_cell(invocations: usize, iterations: usize, cost: u64) -> Self {
        Self {
            addr_fn: AddrPattern::SameCell,
            ..Self::independent(invocations, iterations, cost)
        }
    }

    /// Iteration `i` of invocation `k` writes cell `(i + k) % n`.
    pub fn rotating(invocations: usize, iterations: usize, cost: u64) -> Self {
        Self {
            addr_fn: AddrPattern::Rotating,
            ..Self::independent(invocations, iterations, cost)
        }
    }

    /// Sets the sequential prologue cost per invocation.
    pub fn with_prologue(mut self, ns: u64) -> Self {
        self.prologue = ns;
        self
    }

    /// Sets the per-iteration scheduling cost.
    pub fn with_sched_cost(mut self, ns: u64) -> Self {
        self.sched = ns;
        self
    }

    /// Marks every invocation statically proven conflict-free (for elision
    /// experiments). The caller asserts the claim: `independent` and
    /// `same_cell` patterns qualify (same-index chains stay on one worker
    /// under round-robin), `rotating` does not.
    pub fn assume_proven(mut self) -> Self {
        self.proven = true;
        self
    }
}

impl SimWorkload for UniformWorkload {
    fn num_invocations(&self) -> usize {
        self.invocations
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.iterations
    }

    fn iteration_cost(&self, _inv: usize, _iter: usize) -> u64 {
        self.cost
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        match self.addr_fn {
            AddrPattern::Independent => {}
            AddrPattern::SameCell => out.push((iter, AccessKind::Write)),
            AddrPattern::Rotating => out.push(((iter + inv) % self.iterations, AccessKind::Write)),
        }
    }

    fn prologue_cost(&self, _inv: usize) -> u64 {
        self.prologue
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        self.sched
    }

    fn invocation_is_proven(&self, _inv: usize) -> bool {
        self.proven
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_consistent() {
        let w = UniformWorkload::independent(10, 8, 100);
        assert_eq!(w.total_iterations(), 80);
        assert_eq!(w.total_work_ns(), 8000);
    }

    #[test]
    fn independent_reports_no_accesses() {
        let w = UniformWorkload::independent(2, 4, 1);
        let mut out = Vec::new();
        w.accesses(0, 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rotating_shifts_by_invocation() {
        let w = UniformWorkload::rotating(3, 4, 1);
        let mut out = Vec::new();
        w.accesses(2, 3, &mut out);
        assert_eq!(out, vec![(1, AccessKind::Write)]);
    }

    #[test]
    fn builders_set_costs() {
        let w = UniformWorkload::same_cell(1, 1, 1)
            .with_prologue(7)
            .with_sched_cost(9);
        assert_eq!(w.prologue_cost(0), 7);
        assert_eq!(w.sched_cost(0, 0), 9);
    }
}
