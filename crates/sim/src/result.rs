//! Simulation outcomes.

use crossinvoc_runtime::stats::StatsSummary;
use crossinvoc_runtime::trace::Trace;

/// Timeline summary of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Completion time of the whole region (max over thread finish times).
    pub total_ns: u64,
    /// Per-thread busy time (kernel + scheduling + bookkeeping work).
    pub busy_ns: Vec<u64>,
    /// Per-thread idle time spent waiting at barriers, on synchronization
    /// conditions, or at the speculative-range gate.
    pub idle_ns: Vec<u64>,
    /// Execution counters (tasks, epochs, sync conditions, checkpoints, …).
    pub stats: StatsSummary,
    /// Whether the simulated region abandoned speculation mid-run and
    /// finished under non-speculative barriers (mirrors the threaded
    /// engine's `SpecReport::degraded`).
    pub degraded: bool,
    /// Virtual-time execution trace in the shared JSONL schema (see
    /// `docs/OBSERVABILITY.md`), when tracing was requested. Timestamps are
    /// simulated nanoseconds, so identical runs produce identical traces.
    pub trace: Option<Trace>,
}

impl SimResult {
    /// Speedup of this execution over a baseline duration.
    ///
    /// # Panics
    ///
    /// Panics if this result's `total_ns` is zero.
    pub fn speedup_over(&self, baseline_ns: u64) -> f64 {
        assert!(self.total_ns > 0, "degenerate simulation: zero duration");
        baseline_ns as f64 / self.total_ns as f64
    }

    /// Fraction of aggregate thread time lost to synchronization idling —
    /// the quantity Fig. 4.3 reports as "barrier overhead".
    pub fn idle_fraction(&self) -> f64 {
        let busy: u64 = self.busy_ns.iter().sum();
        let idle: u64 = self.idle_ns.iter().sum();
        if busy + idle == 0 {
            0.0
        } else {
            idle as f64 / (busy + idle) as f64
        }
    }

    /// Number of simulated worker threads.
    pub fn num_threads(&self) -> usize {
        self.busy_ns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(total: u64, busy: Vec<u64>, idle: Vec<u64>) -> SimResult {
        SimResult {
            total_ns: total,
            busy_ns: busy,
            idle_ns: idle,
            stats: StatsSummary::default(),
            degraded: false,
            trace: None,
        }
    }

    #[test]
    fn speedup_is_ratio() {
        let r = result(50, vec![50], vec![0]);
        assert_eq!(r.speedup_over(100), 2.0);
    }

    #[test]
    fn idle_fraction_is_idle_over_total() {
        let r = result(100, vec![60, 80], vec![40, 20]);
        assert!((r.idle_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_timelines_have_zero_idle_fraction() {
        assert_eq!(result(1, vec![], vec![]).idle_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_duration_speedup_panics() {
        result(0, vec![], vec![]).speedup_over(10);
    }
}
