//! Edge cases of the dependence-distance profiler and the
//! recommendation rule of §4.4.

use crossinvoc_runtime::signature::{AccessKind, AccessSignature, RangeSignature};
use crossinvoc_speccross::{DistanceProfiler, ProfileReport};

fn sig(addr: usize, kind: AccessKind) -> RangeSignature {
    let mut s = RangeSignature::empty();
    s.record(addr, kind);
    s
}

#[test]
fn recommendation_follows_the_worker_threshold() {
    let conflicting = ProfileReport {
        min_distance: Some(23),
        conflicts: 4,
        tasks: 100,
        epochs: 10,
    };
    assert!(!conflicting.recommends_speculation(24));
    assert!(conflicting.recommends_speculation(23));
    let clean = ProfileReport {
        min_distance: None,
        conflicts: 0,
        tasks: 100,
        epochs: 10,
    };
    assert!(clean.recommends_speculation(u64::MAX));
}

#[test]
fn write_after_read_counts_as_a_dependence() {
    // Epoch 0 reads cell 5; epoch 1 writes it: an anti-dependence a barrier
    // would have ordered, so the profiler must see it.
    let mut p = DistanceProfiler::<RangeSignature>::new(4);
    p.record_task(sig(5, AccessKind::Read));
    p.epoch_boundary();
    p.record_task(sig(5, AccessKind::Write));
    let r = p.report();
    assert_eq!(r.min_distance, Some(1));
}

#[test]
fn read_after_read_is_not_a_dependence() {
    let mut p = DistanceProfiler::<RangeSignature>::new(4);
    p.record_task(sig(5, AccessKind::Read));
    p.epoch_boundary();
    p.record_task(sig(5, AccessKind::Read));
    assert_eq!(p.report().conflicts, 0);
}

#[test]
fn distances_accumulate_across_multiple_epoch_gaps() {
    // Conflicts at 1-epoch and 3-epoch lags: the minimum wins.
    let mut p = DistanceProfiler::<RangeSignature>::new(8);
    p.record_task(sig(1, AccessKind::Write)); // task 0
    p.record_task(sig(2, AccessKind::Write)); // task 1
    p.epoch_boundary();
    p.record_task(sig(9, AccessKind::Write)); // task 2
    p.record_task(sig(1, AccessKind::Write)); // task 3: distance 3 to task 0
    p.epoch_boundary();
    p.record_task(sig(2, AccessKind::Write)); // task 4: distance 3 to task 1
    p.epoch_boundary();
    p.record_task(sig(9, AccessKind::Write)); // task 5: distance 3 to task 2
    let r = p.report();
    assert_eq!(r.min_distance, Some(3));
    assert_eq!(r.conflicts, 3);
}

#[test]
fn tasks_and_epochs_are_counted_exactly() {
    let mut p = DistanceProfiler::<RangeSignature>::new(2);
    for epoch in 0..5 {
        for task in 0..7 {
            p.record_task(sig(epoch * 7 + task, AccessKind::Write));
        }
        p.epoch_boundary();
    }
    let r = p.report();
    assert_eq!(r.tasks, 35);
    assert_eq!(r.epochs, 5);
}

#[test]
fn empty_profile_reports_cleanly() {
    let p = DistanceProfiler::<RangeSignature>::new(2);
    let r = p.report();
    assert_eq!(r.tasks, 0);
    assert_eq!(r.min_distance, None);
    assert!(r.recommends_speculation(1));
}
