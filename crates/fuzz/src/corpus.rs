//! The stable textual case format and the `corpus/` directory protocol.
//!
//! A corpus entry is one self-contained, hand-editable file:
//!
//! ```text
//! # optional comment lines (divergence details, provenance)
//! seed 42
//! workers 2
//! checkpoint-every 1
//! checker-shards 4
//! signature range
//! gate-distance false
//! degrade false
//! elide false
//! note spec region: ...
//! [program]
//! <crossinvoc_pir::text format>
//! [faults]
//! <FaultPlan::to_text format, possibly empty>
//! [end]
//! ```
//!
//! Every checked-in entry under `corpus/` is replayed as a regression test
//! (`tests/fuzz_corpus.rs`), so a minimized counterexample stays fixed
//! forever once its bug is repaired.

use std::path::{Path, PathBuf};

use crossinvoc_pir::text;
use crossinvoc_runtime::FaultPlan;

use crate::gen::{FuzzCase, SigKind};

/// File extension of corpus entries.
pub const CASE_EXT: &str = "case";

/// Renders `case` in the corpus format.
///
/// # Errors
///
/// Propagates [`text::to_text`] errors (programs with opaque calls cannot
/// be serialized; the generator never emits them).
pub fn case_to_text(case: &FuzzCase) -> Result<String, String> {
    let program = text::to_text(&case.program)?;
    let mut out = String::new();
    out.push_str(&format!("seed {}\n", case.seed));
    out.push_str(&format!("workers {}\n", case.workers));
    out.push_str(&format!("checkpoint-every {}\n", case.checkpoint_every));
    out.push_str(&format!("checker-shards {}\n", case.checker_shards));
    out.push_str(&format!("signature {}\n", case.signature.as_str()));
    out.push_str(&format!("gate-distance {}\n", case.gate_distance));
    out.push_str(&format!("degrade {}\n", case.degrade));
    out.push_str(&format!("elide {}\n", case.elide));
    if !case.note.is_empty() {
        out.push_str(&format!("note {}\n", case.note.replace('\n', " ")));
    }
    out.push_str("[program]\n");
    out.push_str(&program);
    if !program.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("[faults]\n");
    let faults = case.faults.to_text();
    out.push_str(&faults);
    if !faults.is_empty() && !faults.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("[end]\n");
    Ok(out)
}

/// Parses the [`case_to_text`] format. The returned case carries a fresh
/// fault-plan replay budget.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn case_from_text(input: &str) -> Result<FuzzCase, String> {
    enum Section {
        Header,
        Program,
        Faults,
        Done,
    }

    let mut section = Section::Header;
    let mut seed: Option<u64> = None;
    let mut workers: usize = 1;
    let mut checkpoint_every: usize = 1;
    // Entries predating the sharded checker omit the key: one shard.
    let mut checker_shards: usize = 1;
    let mut signature = SigKind::Range;
    let mut gate_distance = false;
    let mut degrade = false;
    // Entries predating static check elision omit the key: off.
    let mut elide = false;
    let mut note = String::new();
    let mut program_text = String::new();
    let mut fault_text = String::new();

    for line in input.lines() {
        match section {
            Section::Header => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                if trimmed == "[program]" {
                    section = Section::Program;
                    continue;
                }
                let (key, value) = trimmed
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("header line without a value: {trimmed:?}"))?;
                let value = value.trim();
                let parse_err = |what: &str| format!("bad {what} value: {value:?}");
                match key {
                    "seed" => seed = Some(value.parse().map_err(|_| parse_err("seed"))?),
                    "workers" => workers = value.parse().map_err(|_| parse_err("workers"))?,
                    "checkpoint-every" => {
                        checkpoint_every =
                            value.parse().map_err(|_| parse_err("checkpoint-every"))?;
                    }
                    "checker-shards" => {
                        checker_shards = value.parse().map_err(|_| parse_err("checker-shards"))?;
                    }
                    "signature" => {
                        signature = match value {
                            "range" => SigKind::Range,
                            "bloom" => SigKind::Bloom,
                            _ => return Err(parse_err("signature")),
                        };
                    }
                    "gate-distance" => {
                        gate_distance = value.parse().map_err(|_| parse_err("gate-distance"))?;
                    }
                    "degrade" => degrade = value.parse().map_err(|_| parse_err("degrade"))?,
                    "elide" => elide = value.parse().map_err(|_| parse_err("elide"))?,
                    "note" => note = value.to_owned(),
                    _ => return Err(format!("unknown header key: {key:?}")),
                }
            }
            Section::Program => {
                if line.trim() == "[faults]" {
                    section = Section::Faults;
                } else {
                    program_text.push_str(line);
                    program_text.push('\n');
                }
            }
            Section::Faults => {
                if line.trim() == "[end]" {
                    section = Section::Done;
                } else {
                    fault_text.push_str(line);
                    fault_text.push('\n');
                }
            }
            Section::Done => {
                if !line.trim().is_empty() {
                    return Err(format!("content after [end]: {line:?}"));
                }
            }
        }
    }
    if !matches!(section, Section::Done) {
        return Err("truncated case: missing [program]/[faults]/[end] sections".to_owned());
    }

    let program = text::from_text(&program_text).map_err(|e| format!("[program]: {e}"))?;
    let faults = FaultPlan::from_text(&fault_text).map_err(|e| format!("[faults]: {e}"))?;
    if workers == 0 {
        return Err("workers must be at least 1".to_owned());
    }
    if checkpoint_every == 0 {
        return Err("checkpoint-every must be at least 1".to_owned());
    }
    if !(1..=crossinvoc_speccross::MAX_SHARDS).contains(&checker_shards) {
        return Err(format!(
            "checker-shards must be in 1..={}",
            crossinvoc_speccross::MAX_SHARDS
        ));
    }
    Ok(FuzzCase {
        seed: seed.ok_or("missing seed header")?,
        workers,
        checkpoint_every,
        checker_shards,
        signature,
        gate_distance,
        degrade,
        elide,
        program,
        faults,
        note,
    })
}

/// Loads every `*.case` file under `dir`, sorted by file name. A missing
/// directory is an empty corpus, not an error.
///
/// # Errors
///
/// I/O failures and parse errors, prefixed with the offending path.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, FuzzCase)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == CASE_EXT))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = case_from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

/// Writes `case` to `dir` as a new counterexample entry, with `detail`
/// (the observed divergence) recorded in leading comment lines. Returns
/// the written path. Never overwrites: an occupied `seed-N.case` slot
/// falls through to `seed-N-2.case`, `-3`, …
///
/// # Errors
///
/// Serialization and I/O failures.
pub fn write_counterexample(dir: &Path, case: &FuzzCase, detail: &str) -> Result<PathBuf, String> {
    let body = case_to_text(case)?;
    let mut text = String::new();
    for line in detail.lines() {
        text.push_str(&format!("# {line}\n"));
    }
    text.push_str(&body);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut path = dir.join(format!("seed-{}.{CASE_EXT}", case.seed));
    let mut n = 1;
    while path.exists() {
        n += 1;
        path = dir.join(format!("seed-{}-{n}.{CASE_EXT}", case.seed));
    }
    std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    #[test]
    fn corpus_round_trip_is_identity() {
        let params = GenParams::default();
        for seed in 0..60 {
            let case = generate(seed, &params);
            let text = case_to_text(&case).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let back = case_from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(back.seed, case.seed, "seed {seed}");
            assert_eq!(back.workers, case.workers, "seed {seed}");
            assert_eq!(back.checkpoint_every, case.checkpoint_every, "seed {seed}");
            assert_eq!(back.checker_shards, case.checker_shards, "seed {seed}");
            assert_eq!(back.signature, case.signature, "seed {seed}");
            assert_eq!(back.gate_distance, case.gate_distance, "seed {seed}");
            assert_eq!(back.degrade, case.degrade, "seed {seed}");
            assert_eq!(back.elide, case.elide, "seed {seed}");
            assert_eq!(back.program, case.program, "seed {seed}");
            assert_eq!(back.faults.specs(), case.faults.specs(), "seed {seed}");
            // Text form is a fixed point as well.
            assert_eq!(case_to_text(&back).unwrap(), text, "seed {seed}");
        }
    }

    #[test]
    fn malformed_cases_are_rejected_with_context() {
        assert!(case_from_text("").unwrap_err().contains("truncated"));
        assert!(case_from_text("bogus-key 1\n[program]\n[faults]\n[end]\n")
            .unwrap_err()
            .contains("unknown header key"));
        assert!(case_from_text("workers 1\n[program]\n[faults]\n[end]\n")
            .unwrap_err()
            .contains("missing seed"),);
        assert!(
            case_from_text("seed 1\nworkers zero\n[program]\n[faults]\n[end]\n")
                .unwrap_err()
                .contains("workers")
        );
    }

    #[test]
    fn write_then_load_round_trips_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("crossinvoc-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let case = generate(7, &GenParams::default());
        let p1 = write_counterexample(&dir, &case, "path seq:\nmemory diverged").unwrap();
        let p2 = write_counterexample(&dir, &case, "second occurrence").unwrap();
        assert_ne!(p1, p2, "collisions must not overwrite");
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1.program, case.program);
        assert!(load_corpus(Path::new("/nonexistent/corpus"))
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
