//! Seeded generation of random PIR loop nests and fault schedules.
//!
//! Every case derives from one `u64` master seed through
//! [`crossinvoc_runtime::hash::SplitMix64`] sub-streams, so a seed
//! reproduces the program, the fault plan, and every engine knob exactly.
//!
//! The grammar generates two families:
//!
//! * **Spec-friendly regions** — an outer loop whose body is optional pure
//!   scalar assignments plus 1–3 DOALL inner loops, drawing per-loop
//!   dependence patterns from: same-index read-modify-write (`A[i]`),
//!   invariant-shifted windows (`A[i+s]` with `s` recomputed per
//!   invocation), disjoint strides (`A[2i+c]` written, `A[2i+1−c]` read),
//!   producer/consumer loop pairs (`A[i]` written by one loop, read by the
//!   next), indirect reads through an index array (`D2[IDX[i]]`), and
//!   half-split wide spans (`A[i]` read, `A[i+trip]` written — one task's
//!   signature straddles every checker shard under the mod-N partition). All
//!   are accepted by `SpecCrossPlan::build`; single-loop shapes are also
//!   accepted by `DomorePlan::build`, so those cases run through every
//!   engine path.
//! * **DOMORE-only nests** — a prologue `load` (impure for SPECCROSS's
//!   region test) feeding overlapping iteration windows, optionally with a
//!   loop-carried store (`C[j+1]`) or indirect addressing through a
//!   read-only index array (the `computeAddr` slice pattern).
//!
//! A separate elision sub-stream can override a spec-friendly region with
//! one of two static-elision families: **cluster-disjoint** (every loop
//! writes per-epoch address clusters of a private array — `pir::elide`
//! proves the whole region, so elision retires every check) and **mixed**
//! (a proven cluster loop interleaved with a producer and an indirect
//! consumer the analysis must refuse to prove). The override rides its own
//! SplitMix64 stream so pre-elision corpus seeds keep their programs.
//!
//! Index expressions are kept structurally in-bounds (lengths are computed
//! from the chosen trip counts and shifts), so any out-of-bounds access
//! reported by the [`crate::oracle`] is a generator bug and is surfaced as
//! a divergence. Stored values always have the form `x*K + h(i, t)` with
//! odd `K ≥ 3`: compositions of such maps do not commute, so executing
//! conflicting accesses in the wrong order changes the final memory image.

use crossinvoc_pir::ir::{Expr, Program, ProgramBuilder, Stmt, StmtId};
use crossinvoc_runtime::hash::SplitMix64;
use crossinvoc_runtime::FaultPlan;

/// Access-signature kind a case runs the SPECCROSS paths with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigKind {
    /// Exact interval signatures: no false conflicts.
    Range,
    /// Bloom-filter signatures: false positives possible (and must be
    /// absorbed by rollback without changing the final state).
    Bloom,
}

impl SigKind {
    /// The corpus-format token.
    pub fn as_str(self) -> &'static str {
        match self {
            SigKind::Range => "range",
            SigKind::Bloom => "bloom",
        }
    }
}

/// Generator bounds. The defaults keep single-case runtime in the low
/// milliseconds while still covering multi-epoch, multi-worker schedules.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Maximum outer-loop trip count (invocations / epochs).
    pub max_outer: u64,
    /// Maximum inner-loop trip count (tasks per epoch).
    pub max_tasks: u64,
    /// Maximum worker threads.
    pub max_workers: u64,
    /// Percent of cases that carry a non-empty fault plan.
    pub fault_percent: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            max_outer: 6,
            max_tasks: 10,
            max_workers: 4,
            fault_percent: 50,
        }
    }
}

/// One generated differential-testing case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Master seed the case derives from (printed in every failure).
    pub seed: u64,
    /// Worker threads for every engine path.
    pub workers: usize,
    /// SPECCROSS checkpoint interval in epochs.
    pub checkpoint_every: usize,
    /// Checker shard count for the sharded SPECCROSS paths (1 = the
    /// classic single checker; biased toward >1 so the straddle merge
    /// rule is exercised constantly).
    pub checker_shards: usize,
    /// Signature kind for the SPECCROSS paths.
    pub signature: SigKind,
    /// Whether to gate speculation by the profiled minimum dependence
    /// distance (the paper's deployment mode) or leave it ungated.
    pub gate_distance: bool,
    /// Whether SPECCROSS runs with a degradation policy installed.
    pub degrade: bool,
    /// Whether the threaded SPECCROSS paths run with static check elision
    /// enabled ([`crossinvoc_speccross::engine::SpecConfig::elide`]). The
    /// dedicated `spec-elide`/`sim-elide` diff lanes run regardless; this
    /// knob additionally turns elision on inside every other SPECCROSS
    /// path, so elision is exercised under faults, degradation, sharding
    /// and shared-pool pairing too.
    pub elide: bool,
    /// The program: sequential prefix, one outermost region loop (the last
    /// top-level `for`), optional sequential suffix.
    pub program: Program,
    /// The fault schedule (may be empty).
    pub faults: FaultPlan,
    /// Human-readable description of the chosen grammar family/patterns.
    pub note: String,
}

impl FuzzCase {
    /// The region's outer loop: the last top-level `for` statement.
    pub fn outer(&self) -> Option<StmtId> {
        self.program
            .body()
            .iter()
            .rev()
            .find(|&&s| matches!(self.program.stmt(s), Stmt::For { .. }))
            .copied()
    }

    /// The region's inner loop for the DOMORE transformation: the last
    /// statement of the outer body, when it is a `for`.
    pub fn inner(&self) -> Option<StmtId> {
        let outer = self.outer()?;
        let Stmt::For { body, .. } = self.program.stmt(outer) else {
            return None;
        };
        let &last = body.last()?;
        matches!(self.program.stmt(last), Stmt::For { .. }).then_some(last)
    }
}

struct Rng(SplitMix64);

impl Rng {
    fn below(&mut self, bound: u64) -> u64 {
        self.0.next_below(bound.max(1))
    }

    fn range(&mut self, lo: u64, hi_incl: u64) -> u64 {
        lo + self.below(hi_incl - lo + 1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

const fn e(v: i64) -> Expr {
    Expr::Const(v)
}

/// Generates the case for `seed` under the given bounds.
pub fn generate(seed: u64, params: &GenParams) -> FuzzCase {
    // Independent sub-streams: engine knobs, program shape, fault plan.
    let mut knobs = Rng(SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15));
    let mut shape = Rng(SplitMix64::new(seed ^ 0x5851_F42D_4C95_7F2D));
    // Its own sub-stream, so adding the shard knob did not reshuffle the
    // programs and fault plans the pre-sharding corpus seeds derive.
    let mut shards = Rng(SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F));
    // Likewise its own sub-stream for the static-elision epoch: the elide
    // knob and the two elision-focused program families (cluster-disjoint
    // and mixed proven+indirect) must not reshuffle pre-elision seeds.
    let mut elision = Rng(SplitMix64::new(seed ^ 0x6C2E_A417_B99D_E255));

    let workers = knobs.range(1, params.max_workers) as usize;
    let checker_shards = if shards.chance(25) {
        1
    } else {
        [2, 3, 4, 8][shards.below(4) as usize]
    };
    let checkpoint_every = knobs.range(1, 4) as usize;
    let signature = if knobs.chance(25) {
        SigKind::Bloom
    } else {
        SigKind::Range
    };
    let gate_distance = knobs.chance(40);
    let degrade = knobs.chance(50);
    let elide = elision.chance(60);
    let family = match elision.below(5) {
        0 => ElideShape::Cluster,
        1 => ElideShape::Mixed,
        _ => ElideShape::Legacy,
    };

    let domore_only = shape.chance(30);
    let (program, note, epochs, tasks) = if domore_only {
        gen_domore_nest(&mut shape, params)
    } else {
        gen_spec_region(&mut shape, params, family)
    };

    let faults = if knobs.chance(params.fault_percent) {
        FaultPlan::random(
            seed ^ 0xFEED_FACE_CAFE_BEEF,
            epochs.max(1) as u32,
            tasks.max(1),
            workers,
        )
    } else {
        FaultPlan::new()
    };

    FuzzCase {
        seed,
        workers,
        checkpoint_every,
        checker_shards,
        signature,
        gate_distance,
        degrade,
        elide,
        program,
        faults,
        note,
    }
}

/// Program-family override drawn from the elision sub-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ElideShape {
    /// The original spec-region grammar, untouched.
    Legacy,
    /// Every loop writes its own per-epoch address cluster
    /// (`E_l[trip*t + i]`): `pir::elide` proves the whole region
    /// conflict-free, so elision retires every check.
    Cluster,
    /// Loop 0 is a provable cluster loop; the remaining loops read loop
    /// 0's array *indirectly* through an index array, which the analysis
    /// cannot resolve — proven and unproven epochs interleave.
    Mixed,
}

/// Per-loop dependence pattern of the spec-friendly family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecPattern {
    /// `load x = D[i]; store D[i] = mix(x)` — per-address chains across
    /// invocations (every epoch revisits the same cells).
    SameIndex,
    /// `load/store D[i+s]` with `s = t % K` recomputed per invocation —
    /// overlapping windows slide across epochs.
    Shifted,
    /// `store D[2i+c]; load D[2i+(1−c)]` with a generation-time constant
    /// `c` — intra-loop disjoint, cross-epoch write/write + read/write.
    Strided,
    /// `load v = IDX[i]; load y = SRC[v]; store D[i] = mix(y, v)` —
    /// indirect reads through a read-only index array.
    Indirect,
    /// First loop of a producer/consumer pair: `store SHARED[i]`.
    Producer,
    /// Second loop of the pair: `load SHARED[i]; store D[i]`.
    Consumer,
    /// `load x = D[i]; store D[i+trip] = mix(x)` — reads the low half,
    /// writes the high half. Every task's signature spans `trip + 1`
    /// addresses, so under the mod-N shard partition it straddles (or
    /// broadcasts to) every shard; cross-epoch write/write conflicts on
    /// the high half keep the merge rule honest.
    WideSpan,
    /// `load x = E[trip*t + i]; store E[trip*t + i] = mix(x)` over a
    /// per-loop array sized `trip * epochs` — every epoch owns a disjoint
    /// address cluster, so `pir::elide` proves the loop conflict-free and
    /// elision retires every check it would have filed.
    Cluster,
    /// `load v = IDX[i]; load x = A[v]; store D[i] = mix(x + v)` — an
    /// indirect read of the *watched* array `A` a sibling `Producer` loop
    /// writes. The analysis cannot resolve `A[v]`, which poisons every
    /// access to `A`, so this loop (and the producer) stay on the full
    /// admission path while the cluster loop (on its private array) still
    /// elides. Still DOALL within one invocation: the unprovenness is
    /// purely cross-invocation.
    IndirectWatched,
}

/// Builds a SPECCROSS-acceptable region: outer loop over scalars + DOALL
/// inner loops. Returns (program, note, epochs, max tasks per epoch).
///
/// All shape draws happen before the `family` override is applied, so a
/// `Legacy` call is draw-for-draw identical to the pre-elision generator
/// and pinned corpus seeds keep their programs.
fn gen_spec_region(
    rng: &mut Rng,
    params: &GenParams,
    family: ElideShape,
) -> (Program, String, u64, u64) {
    let outer_trip = if rng.chance(8) {
        0 // zero-trip region: every engine must handle an empty schedule
    } else {
        rng.range(1, params.max_outer)
    };
    // Mostly single-loop regions (those also pass the DOMORE build and run
    // through all four engine paths); sometimes 2–3 loops for
    // producer/consumer and richer epoch interleavings.
    let num_loops = if rng.chance(65) { 1 } else { rng.range(2, 3) } as usize;
    let shift_mod = rng.range(1, 4) as i64; // s = t % shift_mod ∈ [0, shift_mod)
    let use_shift = rng.chance(50);

    let mut trips = Vec::new();
    let mut patterns = Vec::new();
    let mut producer_pending = false;
    for l in 0..num_loops {
        trips.push(rng.range(1, params.max_tasks));
        let p = if producer_pending {
            producer_pending = false;
            SpecPattern::Consumer
        } else {
            match rng.below(if l + 1 < num_loops { 7 } else { 5 } as u64) {
                0 => SpecPattern::SameIndex,
                1 => {
                    if use_shift {
                        SpecPattern::Shifted
                    } else {
                        SpecPattern::SameIndex
                    }
                }
                2 => SpecPattern::Strided,
                3 => SpecPattern::Indirect,
                4 => SpecPattern::WideSpan,
                _ => {
                    producer_pending = true;
                    SpecPattern::Producer
                }
            }
        };
        patterns.push(p);
    }

    // Elision-family override (after every legacy draw, so `Legacy` seeds
    // are untouched; the extra trip draw below only happens for `Mixed`).
    match family {
        ElideShape::Legacy => {}
        ElideShape::Cluster => {
            patterns.iter_mut().for_each(|p| *p = SpecPattern::Cluster);
        }
        ElideShape::Mixed => {
            // Cluster (proven) + producer of A + indirect consumer of A
            // (both unproven: the unresolved `A[v]` read poisons `A`).
            while trips.len() < 3 {
                trips.push(rng.range(1, params.max_tasks));
            }
            trips.truncate(3);
            patterns = vec![
                SpecPattern::Cluster,
                SpecPattern::Producer,
                SpecPattern::IndirectWatched,
            ];
        }
    }
    let num_loops = trips.len();

    let max_trip = trips.iter().copied().max().unwrap_or(1);
    // Lengths sized so every generated index stays in bounds:
    //   shifted:   i + s       < trip + shift_mod
    //   strided:   2i + 1      ≤ 2(trip−1) + 1 < 2·trip
    //   widespan:  i + trip    ≤ 2·trip − 1    < 2·trip
    let data_len = (2 * max_trip + shift_mod as u64 + 2) as usize;
    let idx_len = max_trip.max(1) as usize;

    let mut b = ProgramBuilder::new();
    let a = b.array("A", data_len);
    let d2 = b.array("B", data_len);
    let src = b.array("SRC", data_len);
    let idx = b.array("IDX", idx_len);
    // Per-loop cluster arrays: `E_l[trip*t + i]` stays strictly below
    // `trip * outer_trip` (length 1 when the region is zero-trip).
    let cluster_arrays: Vec<_> = patterns
        .iter()
        .enumerate()
        .map(|(l, &p)| {
            (p == SpecPattern::Cluster)
                .then(|| b.array(&format!("E{l}"), (trips[l] * outer_trip).max(1) as usize))
        })
        .collect();
    let t = b.var("t");
    let i = b.var("i");
    let x = b.var("x");
    let v = b.var("v");
    let s = b.var("s");

    // Prefix: seed the data arrays with distinct non-zero values and fill
    // IDX with in-bounds indices into SRC.
    let idx_stride = (1 + 2 * rng.below(4)) as i64; // odd
    b.for_loop(i, e(0), e(data_len as i64), |b| {
        b.store(
            a,
            Expr::Var(i),
            Expr::add(Expr::mul(Expr::Var(i), e(7)), e(3)),
        );
        b.store(
            d2,
            Expr::Var(i),
            Expr::add(Expr::mul(Expr::Var(i), e(5)), e(11)),
        );
        b.store(
            src,
            Expr::Var(i),
            Expr::add(Expr::mul(Expr::Var(i), e(9)), e(1)),
        );
    });
    b.for_loop(i, e(0), e(idx_len as i64), |b| {
        b.store(
            idx,
            Expr::Var(i),
            Expr::rem(
                Expr::add(Expr::mul(Expr::Var(i), e(idx_stride)), e(2)),
                e(data_len as i64),
            ),
        );
    });

    // Region: the last top-level loop.
    let loop_arrays: Vec<_> = (0..num_loops)
        .map(|l| if l % 2 == 0 { a } else { d2 })
        .collect();
    let k_mix = (3 + 2 * rng.below(3)) as i64; // odd ≥ 3: order-sensitive
    b.for_loop(t, e(0), e(outer_trip as i64), |b| {
        if use_shift {
            b.assign(s, Expr::rem(Expr::Var(t), e(shift_mod)));
        }
        for (l, &pat) in patterns.iter().enumerate() {
            let d = loop_arrays[l];
            let trip = trips[l] as i64;
            b.for_loop(i, e(0), e(trip), |b| {
                let mix = |val: Expr| {
                    Expr::add(
                        Expr::mul(val, e(k_mix)),
                        Expr::add(Expr::Var(i), Expr::mul(Expr::Var(t), e(4))),
                    )
                };
                match pat {
                    SpecPattern::SameIndex => {
                        b.load(x, d, Expr::Var(i));
                        b.store(d, Expr::Var(i), mix(Expr::Var(x)));
                    }
                    SpecPattern::Shifted => {
                        let at = Expr::add(Expr::Var(i), Expr::Var(s));
                        b.load(x, d, at.clone());
                        b.store(d, at, mix(Expr::Var(x)));
                    }
                    SpecPattern::Strided => {
                        let c = trip % 2; // deterministic 0/1
                        let wr = Expr::add(Expr::mul(e(2), Expr::Var(i)), e(c));
                        let rd = Expr::add(Expr::mul(e(2), Expr::Var(i)), e(1 - c));
                        b.load(x, d, rd);
                        b.store(d, wr, mix(Expr::Var(x)));
                    }
                    SpecPattern::Indirect => {
                        b.load(v, idx, Expr::Var(i));
                        b.load(x, src, Expr::Var(v));
                        b.store(d, Expr::Var(i), mix(Expr::add(Expr::Var(x), Expr::Var(v))));
                    }
                    SpecPattern::Producer => {
                        b.store(a, Expr::Var(i), mix(Expr::Var(i)));
                    }
                    SpecPattern::Consumer => {
                        b.load(x, a, Expr::Var(i));
                        b.store(d2, Expr::Var(i), mix(Expr::Var(x)));
                    }
                    SpecPattern::WideSpan => {
                        b.load(x, d, Expr::Var(i));
                        b.store(d, Expr::add(Expr::Var(i), e(trip)), mix(Expr::Var(x)));
                    }
                    SpecPattern::Cluster => {
                        let earr = cluster_arrays[l].expect("cluster loop has its array");
                        let at = Expr::add(Expr::mul(Expr::Var(t), e(trip)), Expr::Var(i));
                        b.load(x, earr, at.clone());
                        b.store(earr, at, mix(Expr::Var(x)));
                    }
                    SpecPattern::IndirectWatched => {
                        b.load(v, idx, Expr::Var(i));
                        b.load(x, a, Expr::Var(v));
                        b.store(d2, Expr::Var(i), mix(Expr::add(Expr::Var(x), Expr::Var(v))));
                    }
                }
            });
        }
    });

    // Optional sequential suffix (exercises the post-region split).
    if rng.chance(25) {
        b.for_loop(i, e(0), e(4.min(data_len as i64)), |b| {
            b.load(x, a, Expr::Var(i));
            b.store(a, Expr::Var(i), Expr::mul(Expr::Var(x), e(5)));
        });
    }

    let note = format!(
        "spec region: {outer_trip} epochs x {num_loops} loops {patterns:?} trips {trips:?}"
    );
    let epochs = outer_trip * num_loops as u64;
    (b.finish(), note, epochs, max_trip)
}

/// Per-iteration pattern of the DOMORE-only family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DomorePattern {
    /// `load x = C[j]; store C[j] = mix(x)` over overlapping windows.
    Window,
    /// `load x = C[j]; store C[j+1] = mix(x)` — loop-carried within the
    /// invocation (DOMORE's sync conditions must order the chain).
    Carried,
    /// `load v = IDX[j]; load x = C[v]; store C[v] = mix(x)` — the
    /// `computeAddr` slice reads a region-read-only index array.
    Indirect,
}

/// Builds a nest SPECCROSS must reject (impure region prologue: a `load`
/// in the outer body) but DOMORE accepts. Returns (program, note, epochs,
/// max tasks per epoch).
fn gen_domore_nest(rng: &mut Rng, params: &GenParams) -> (Program, String, u64, u64) {
    let outer_trip = rng.range(1, params.max_outer);
    let window = rng.range(1, params.max_tasks);
    let pattern = match rng.below(3) {
        0 => DomorePattern::Window,
        1 => DomorePattern::Carried,
        _ => DomorePattern::Indirect,
    };
    // start ∈ [0, span) from STARTS, j ∈ [start, start+window),
    // worst index j+1 ≤ span−1 + window  ⇒  len = span + window + 1.
    let span = rng.range(1, 6);
    let len = (span + window + 1) as usize;

    let mut b = ProgramBuilder::new();
    let c = b.array("C", len);
    let starts = b.array("STARTS", outer_trip as usize);
    let idx = b.array("IDX", len);
    let t = b.var("t");
    let j = b.var("j");
    let x = b.var("x");
    let v = b.var("v");
    let start = b.var("start");

    let k_mix = (3 + 2 * rng.below(3)) as i64;
    let start_stride = (1 + rng.below(4)) as i64;
    let idx_stride = (1 + 2 * rng.below(4)) as i64;

    // Prefix: seed C, overlapping start offsets, in-bounds IDX.
    b.for_loop(j, e(0), e(len as i64), |b| {
        b.store(
            c,
            Expr::Var(j),
            Expr::add(Expr::mul(Expr::Var(j), e(5)), e(1)),
        );
        b.store(
            idx,
            Expr::Var(j),
            Expr::rem(
                Expr::add(Expr::mul(Expr::Var(j), e(idx_stride)), e(1)),
                e(len as i64),
            ),
        );
    });
    b.for_loop(j, e(0), e(outer_trip as i64), |b| {
        b.store(
            starts,
            Expr::Var(j),
            Expr::rem(Expr::mul(Expr::Var(j), e(start_stride)), e(span as i64)),
        );
    });

    // The nest: outer body = prologue load (impure for SPECCROSS) + inner
    // loop over the invocation's window.
    b.for_loop(t, e(0), e(outer_trip as i64), |b| {
        b.load(start, starts, Expr::Var(t));
        b.for_loop(
            j,
            Expr::Var(start),
            Expr::add(Expr::Var(start), e(window as i64)),
            |b| {
                let mix = |val: Expr| {
                    Expr::add(
                        Expr::mul(val, e(k_mix)),
                        Expr::add(Expr::Var(j), Expr::mul(Expr::Var(t), e(4))),
                    )
                };
                match pattern {
                    DomorePattern::Window => {
                        b.load(x, c, Expr::Var(j));
                        b.store(c, Expr::Var(j), mix(Expr::Var(x)));
                    }
                    DomorePattern::Carried => {
                        b.load(x, c, Expr::Var(j));
                        b.store(c, Expr::add(Expr::Var(j), e(1)), mix(Expr::Var(x)));
                    }
                    DomorePattern::Indirect => {
                        b.load(v, idx, Expr::Var(j));
                        b.load(x, c, Expr::Var(v));
                        b.store(c, Expr::Var(v), mix(Expr::Var(x)));
                    }
                }
            },
        );
    });

    let note =
        format!("domore nest: {outer_trip} invocations, window {window}, span {span}, {pattern:?}");
    (b.finish(), note, outer_trip, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::run_oracle;
    use crossinvoc_pir::{DomorePlan, SpecCrossPlan};

    #[test]
    fn generation_is_seed_deterministic() {
        let p = GenParams::default();
        for seed in 0..40 {
            let a = generate(seed, &p);
            let b = generate(seed, &p);
            assert_eq!(a.program, b.program, "seed {seed}");
            assert_eq!(a.faults.specs(), b.faults.specs(), "seed {seed}");
            assert_eq!(a.workers, b.workers, "seed {seed}");
            assert_eq!(a.signature, b.signature, "seed {seed}");
        }
    }

    #[test]
    fn generated_programs_stay_in_bounds() {
        let p = GenParams::default();
        for seed in 0..300 {
            let case = generate(seed, &p);
            run_oracle(&case.program)
                .unwrap_or_else(|e| panic!("seed {seed}: oracle rejected the case: {e}"));
        }
    }

    #[test]
    fn elision_families_classify_as_designed() {
        // Cluster regions must come out fully proven, mixed regions must
        // interleave a proven cluster loop with unproven indirect loops —
        // otherwise the elide diff lanes degenerate to no-ops.
        let p = GenParams::default();
        let (mut clusters, mut mixeds) = (0, 0);
        for seed in 0..400 {
            let case = generate(seed, &p);
            if !case.note.contains("Cluster") || case.note.contains("spec region: 0 epochs") {
                continue;
            }
            let outer = case.outer().expect("spec case has a region loop");
            // A sequential suffix displaces the region as the last
            // top-level loop; such cases are not spec-applicable (same
            // rule as the diff harness) and prove nothing about elision.
            let Ok(plan) = SpecCrossPlan::build(&case.program, outer) else {
                continue;
            };
            let elision = plan.elision();
            if case.note.contains("IndirectWatched") {
                mixeds += 1;
                assert!(
                    elision.loop_is_proven(0),
                    "seed {seed}: mixed loop 0 is the provable cluster loop"
                );
                assert!(
                    (1..elision.loops.len()).all(|l| !elision.loop_is_proven(l)),
                    "seed {seed}: indirect reads of a watched array must stay unproven"
                );
            } else {
                clusters += 1;
                assert!(
                    elision.fully_proven(),
                    "seed {seed}: cluster region must prove every access"
                );
            }
        }
        assert!(clusters > 20, "cluster family is common (got {clusters})");
        assert!(mixeds > 20, "mixed family is common (got {mixeds})");
    }

    #[test]
    fn grammar_reaches_both_engine_builds() {
        let p = GenParams::default();
        let (mut spec_ok, mut domore_ok, mut both) = (0, 0, 0);
        for seed in 0..300 {
            let case = generate(seed, &p);
            let outer = case.outer().expect("every case has a region loop");
            let s = SpecCrossPlan::build(&case.program, outer).is_ok();
            let d = case
                .inner()
                .is_some_and(|inner| DomorePlan::build(&case.program, outer, inner).is_ok());
            spec_ok += s as u32;
            domore_ok += d as u32;
            both += (s && d) as u32;
        }
        assert!(spec_ok > 100, "spec plans build often (got {spec_ok})");
        assert!(
            domore_ok > 100,
            "domore plans build often (got {domore_ok})"
        );
        assert!(both > 50, "four-path cases are common (got {both})");
    }
}
