//! Fig. 5.6 — the FLUIDANIMATE case study (§5.4): five parallelization
//! plans for the eight-phase frame loop of Fig. 5.5.
//!
//! Only the two neighbour-scatter phases (the thesis' `ComputeDensities` /
//! `ComputeForces`, its L4 and L6) need anything beyond DOALL; every plan
//! differs only in how it handles them:
//!
//! * MANUAL — PARSEC's hand parallelization: DOANY (fine-grained locks) on
//!   the scatter phases, barriers everywhere.
//! * LOCALWRITE + Barrier — owner-computes with thread-scaled redundant
//!   traversal on the scatter phases.
//! * LOCALWRITE + SPECCROSS — same inner plan, speculative barriers.
//! * DOMORE + Barrier — runtime scheduling inside invocations only.
//! * DOMORE + SPECCROSS — the duplicated-scheduler composition (§3.4),
//!   which the thesis finds best overall.

use crossinvoc_bench::{doany_barrier, localwrite_factor_pct, write_csv, THREADS};
use crossinvoc_domore::policy::ModuloWrite;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::fluidanimate::Fluidanimate;
use crossinvoc_workloads::kernel::profile_distance;
use crossinvoc_workloads::Scale;

/// Critical fraction the manual DOANY locks serialize in scatter phases.
const DOANY_CRITICAL_PCT: u64 = 30;

/// Inflates kernel cost on the scatter phases only, by a fixed factor.
#[derive(Debug)]
struct ScatterCost {
    inner: Fluidanimate,
    factor_pct: u64,
}

impl SimWorkload for ScatterCost {
    fn num_invocations(&self) -> usize {
        self.inner.num_invocations()
    }
    fn num_iterations(&self, inv: usize) -> usize {
        self.inner.num_iterations(inv)
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        let base = self.inner.iteration_cost(inv, iter);
        if Fluidanimate::is_scatter_phase(inv) {
            base * self.factor_pct / 100
        } else {
            base
        }
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        self.inner.accesses(inv, iter, out)
    }
    fn address_space(&self) -> Option<usize> {
        self.inner.address_space()
    }
}

/// Adds the §3.4 duplicated-scheduler overhead on the scatter phases:
/// every worker re-runs the scheduling slice for *all* of the phase's
/// tasks, so each of its own tasks carries `workers ×` the per-task cost.
#[derive(Debug)]
struct DuplicatedSchedulingCost {
    inner: Fluidanimate,
    workers: usize,
}

impl SimWorkload for DuplicatedSchedulingCost {
    fn num_invocations(&self) -> usize {
        self.inner.num_invocations()
    }
    fn num_iterations(&self, inv: usize) -> usize {
        self.inner.num_iterations(inv)
    }
    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        let base = self.inner.iteration_cost(inv, iter);
        if Fluidanimate::is_scatter_phase(inv) {
            base + self.inner.sched_cost(inv, iter) * self.workers as u64
        } else {
            base
        }
    }
    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        self.inner.accesses(inv, iter, out)
    }
    fn address_space(&self) -> Option<usize> {
        self.inner.address_space()
    }
}

fn main() {
    println!("Fig. 5.6: FLUIDANIMATE under five parallelization plans");
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "threads", "MANUAL", "LW+Bar", "LW+Spec", "DM+Bar", "DM+Spec"
    );
    let model = Fluidanimate::new(Scale::Figure, 0xC0FFEE ^ 14);
    let cells = model.cells();
    let cost = CostModel::default();
    let seq = sequential(&model, &cost).total_ns;
    let distance = profile_distance(&model, 9).min_distance;
    let mut rows = Vec::new();
    let mut dm_spec_best = 0.0f64;
    let mut others_best = 0.0f64;
    for threads in THREADS {
        let workers = threads.saturating_sub(1).max(1);
        let manual = doany_barrier(
            &model,
            threads,
            &|inv| {
                if Fluidanimate::is_scatter_phase(inv) {
                    DOANY_CRITICAL_PCT
                } else {
                    0
                }
            },
            &cost,
        )
        .speedup_over(seq);
        let lw = ScatterCost {
            inner: model.clone(),
            factor_pct: localwrite_factor_pct(threads),
        };
        let lw_bar = barrier(&lw, threads, &cost).speedup_over(seq);
        let params = SpecSimParams::with_threads(workers).spec_distance(distance);
        let lw_spec_model = ScatterCost {
            inner: model.clone(),
            factor_pct: localwrite_factor_pct(workers),
        };
        let lw_spec = speccross(&lw_spec_model, &params, &cost).speedup_over(seq);
        let dm_bar = domore_barriered(&model, workers, &mut ModuloWrite::new(cells), &cost)
            .speedup_over(seq);
        let dm_spec_model = DuplicatedSchedulingCost {
            inner: model.clone(),
            workers,
        };
        let dm_spec = speccross(&dm_spec_model, &params, &cost).speedup_over(seq);
        println!(
            "{threads:>7} {manual:>8.2}x {lw_bar:>9.2}x {lw_spec:>9.2}x {dm_bar:>9.2}x {dm_spec:>9.2}x"
        );
        rows.push(format!(
            "{threads},{manual:.4},{lw_bar:.4},{lw_spec:.4},{dm_bar:.4},{dm_spec:.4}"
        ));
        dm_spec_best = dm_spec_best.max(dm_spec);
        others_best = others_best.max(manual).max(lw_bar).max(lw_spec).max(dm_bar);
    }
    println!(
        "\nDOMORE+SPECCROSS best {dm_spec_best:.2}x vs best other plan {others_best:.2}x \
         (thesis: the combination wins)"
    );
    write_csv(
        "fig5_6",
        "threads,manual,localwrite_barrier,localwrite_speccross,domore_barrier,domore_speccross",
        &rows,
    );
}
