//! PIR — a miniature parallelization IR and the compile-time side of the
//! crossinvoc reproduction (substitution S1 of DESIGN.md: this crate stands
//! in for the LLVM infrastructure the thesis builds on).
//!
//! The thesis' compile-time algorithms consume *structure*, not machine
//! detail: the program dependence graph of a loop nest, its strongly
//! connected components, induction/affine index forms, and program slices.
//! PIR provides exactly that structure over an explicit loop-nest IR:
//!
//! * [`ir`] — arrays, scalar variables, expressions and statements
//!   (assignments, explicit loads/stores, opaque calls with declared
//!   effects, `if`, counted `for` loops). Using a structured IR instead of a
//!   basic-block CFG removes MTCG's branch-target repair steps (§3.3.2,
//!   rules 2–3) without weakening any dependence-level algorithm; the
//!   correspondence is documented per module.
//! * [`interp`] — a sequential interpreter (the semantics of record) plus an
//!   access tracer used for dependence profiling (manifest rates, Fig. 3.1's
//!   72.4%).
//! * [`analysis`] — affine index analysis and the may-depend test between
//!   memory accesses, including loop-carried and cross-invocation
//!   classification and constant dependence distances (§4.5.6).
//! * [`elide`] — static conflict-freedom proofs for speculative regions:
//!   affine cross-invocation footprints whose compared task pairs provably
//!   never collide are elided from signature generation and checker
//!   admission (the runtime consults the per-loop mask).
//! * [`pdg`] — program dependence graphs over statements: register, memory
//!   and control edges (Fig. 3.1(b)/(c)).
//! * [`scc`] — Tarjan SCCs, the DAG-SCC, and the DOMORE scheduler/worker
//!   partitioner with its backedge-repair fixpoint (§3.3.1).
//! * [`mtcg`] — multi-threaded code generation (§3.3.2): emission of the
//!   scheduler/worker function pair of Fig. 3.7, including the live-in
//!   value-communication rule and the END_TOKEN protocol.
//! * [`mod@slice`] — reverse program slicing for `computeAddr` generation
//!   (Alg. 3), with the side-effect abort and the performance guard
//!   (§3.3.4).
//! * [`techniques`] — applicability tests for the intra-invocation baselines
//!   (DOALL, Spec-DOALL, DOANY, LOCALWRITE, DOACROSS, DSWP; §2.2) and the
//!   decision flow of Fig. 1.5.
//! * [`transform`] — the DOMORE transformation (partition + `computeAddr`
//!   extraction → an executable [`transform::DomorePlan`]) and the
//!   SPECCROSS region detection and instrumentation (Alg. 5 → an executable
//!   [`transform::SpecCrossPlan`]); both plans adapt the interpreted program
//!   to the real runtime crates, closing the loop from source-level IR to
//!   parallel execution.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod elide;
pub mod interp;
pub mod ir;
pub mod mtcg;
pub mod pdg;
pub mod scc;
pub mod slice;
pub mod techniques;
pub mod text;
pub mod transform;

pub use analysis::{AffineForm, DepTest};
pub use elide::{ElisionPlan, LoopElision, UnprovenReason};
pub use interp::{Interp, Memory, TraceEvent};
pub use ir::{ArrayId, BinOp, Expr, Program, ProgramBuilder, Stmt, StmtId, VarId};
pub use mtcg::{MtcgDisplay, MtcgOutput, SchedulerStep, WorkerStep};
pub use pdg::{DepKind, Pdg, PdgEdge};
pub use scc::{Partition, SccGraph};
pub use techniques::{Applicability, Technique};
pub use transform::{DomorePlan, SpecCrossPlan, TransformError};
