//! `server-stats` — renders telemetry snapshot JSONL (schema
//! `crossinvoc-telemetry-1`, written by a [`RegionServer`] snapshot pump,
//! `bench-suite --telemetry`, or the simulator's
//! `region_server_telemetry` mirror) as a `top`-style table: one row per
//! region, a pool summary line, and a red-flag column for rows that
//! faulted or degraded. See `docs/OBSERVABILITY.md`.
//!
//! ```text
//! server-stats [--follow] [--interval-ms N] <snapshots.jsonl>
//! ```
//!
//! * `--follow` — keep re-reading the file and re-rendering the latest
//!   snapshot every `--interval-ms` milliseconds (default 1000), like
//!   `top` over a live pump; without it, render the last snapshot once.
//! * `--interval-ms N` — refresh period for `--follow`.
//!
//! [`RegionServer`]: https://docs.rs/crossinvoc (crate docs; `crossinvoc::server`)

use std::process::ExitCode;
use std::time::Duration;

use crossinvoc_bench::json::{self, Json};

struct Args {
    follow: bool,
    interval_ms: u64,
    path: String,
}

fn parse_args() -> Result<Args, String> {
    let mut follow = false;
    let mut interval_ms = 1000u64;
    let mut path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--interval-ms" => {
                let n = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = n
                    .parse()
                    .map_err(|_| format!("--interval-ms: invalid value {n:?}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            p => {
                if path.replace(p.to_string()).is_some() {
                    return Err("expected exactly one snapshot JSONL path".into());
                }
            }
        }
    }
    Ok(Args {
        follow,
        interval_ms,
        path: path.ok_or("usage: server-stats [--follow] [--interval-ms N] <snapshots.jsonl>")?,
    })
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn text<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// Human-readable duration from nanoseconds: `970ns`, `12.3µs`, `45.6ms`, `1.2s`.
fn dur(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

fn hist_line(h: &Json) -> String {
    format!(
        "p50 {} p95 {} max {} (n={})",
        dur(num(h, "p50_ns")),
        dur(num(h, "p95_ns")),
        dur(num(h, "max_ns")),
        num(h, "count") as u64,
    )
}

/// Renders one snapshot object as the full table.
fn render(snap: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    static NULL: Json = Json::Null;
    let pool = snap.get("pool").unwrap_or(&NULL);
    let _ = writeln!(
        out,
        "crossinvoc region server — t +{}   slots {}/{} busy   util {:.1}%   in-flight {}   admissions {}   flight-dumps {}",
        dur(num(snap, "t_ns")),
        num(pool, "slots_busy") as u64,
        num(pool, "slots") as u64,
        num(pool, "utilization") * 100.0,
        num(pool, "in_flight") as u64,
        num(pool, "admissions") as u64,
        num(snap, "flight_dumps") as u64,
    );
    if let (Some(qw), Some(lat)) = (pool.get("queue_wait"), pool.get("region_latency")) {
        let _ = writeln!(
            out,
            "pool queue-wait {}   region-latency {}",
            hist_line(qw),
            hist_line(lat)
        );
    }
    let _ = writeln!(
        out,
        "{:>6}  {:<18} {:<8} {:>4}  {:>9}  {:>9}  {:>8}  {:>7}  {:>8}  {:>7}  {:>6}  {}",
        "REGION",
        "KIND",
        "STATE",
        "GANG",
        "QWAIT",
        "LATENCY",
        "TASKS",
        "ELIDED",
        "MISSPEC%",
        "DEGRADE",
        "FAULTS",
        "FLAG"
    );
    let empty = Vec::new();
    let regions = snap.get("regions").and_then(Json::as_arr).unwrap_or(&empty);
    for r in regions {
        let faults = num(r, "faults") as u64;
        let degrades = num(r, "degrade_events") as u64;
        let state = text(r, "state");
        let flag = if state == "faulted" || faults > 0 || degrades > 0 {
            "!!"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:>6}  {:<18} {:<8} {:>4}  {:>9}  {:>9}  {:>8}  {:>7}  {:>8.2}  {:>7}  {:>6}  {}",
            num(r, "region_id") as u64,
            text(r, "kind"),
            state,
            num(r, "gang") as u64,
            dur(num(r, "queue_wait_ns")),
            dur(num(r, "latency_ns")),
            num(r, "tasks") as u64,
            num(r, "elided_admits") as u64,
            num(r, "misspec_rate") * 100.0,
            degrades,
            faults,
            flag,
        );
    }
    out
}

/// Parses the last well-formed snapshot line of the JSONL text.
fn last_snapshot(text: &str) -> Result<Json, String> {
    let mut last = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let parsed = json::parse(line)?;
        match parsed.get("schema").and_then(Json::as_str) {
            Some("crossinvoc-telemetry-1") => last = Some(parsed),
            other => {
                return Err(format!(
                    "not a telemetry snapshot (schema {:?})",
                    other.unwrap_or("<missing>")
                ))
            }
        }
    }
    last.ok_or_else(|| "no snapshots in input".to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("server-stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    loop {
        let outcome = std::fs::read_to_string(&args.path)
            .map_err(|e| e.to_string())
            .and_then(|text| last_snapshot(&text));
        match outcome {
            Ok(snap) => {
                if args.follow {
                    // Clear screen + home, like top.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&snap));
            }
            Err(err) if args.follow => eprintln!("server-stats: {}: {err} (retrying)", args.path),
            Err(err) => {
                eprintln!("server-stats: {}: {err}", args.path);
                return ExitCode::FAILURE;
            }
        }
        if !args.follow {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms.max(10)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::metrics::MetricsSummary;
    use crossinvoc_runtime::telemetry::{
        PoolSnapshot, RegionSnapshot, RegionState, RegistrySnapshot,
    };

    fn sample() -> RegistrySnapshot {
        let mk = |id, state, faults| RegionSnapshot {
            region_id: id,
            kind: "speccross".to_string(),
            gang: 3,
            state,
            queue_wait_ns: 1_200,
            degrade_events: 0,
            faults,
            latency_ns: 45_600_000,
            metrics: MetricsSummary::default(),
        };
        RegistrySnapshot {
            t_ns: 1_234_000_000,
            pool: PoolSnapshot {
                slots: 6,
                slots_busy: 3,
                in_flight: 1,
                admissions: 2,
                busy_ns: 100,
                utilization: 0.5,
                queue_wait: Default::default(),
                region_latency: Default::default(),
            },
            regions: vec![mk(1, RegionState::Done, 0), mk(9, RegionState::Faulted, 1)],
            flight_dumps: 1,
        }
    }

    #[test]
    fn renders_pool_line_region_rows_and_red_flags() {
        let snap = json::parse(&sample().to_json()).expect("wire snapshot parses");
        let table = render(&snap);
        assert!(table.contains("slots 3/6 busy"), "{table}");
        assert!(table.contains("flight-dumps 1"), "{table}");
        assert!(table.contains("ELIDED"), "{table}");
        let faulted = table.lines().find(|l| l.contains("faulted")).unwrap();
        assert!(faulted.trim_end().ends_with("!!"), "{faulted}");
        let done = table.lines().find(|l| l.contains("done")).unwrap();
        assert!(!done.contains("!!"), "{done}");
    }

    #[test]
    fn last_snapshot_takes_the_newest_line_and_rejects_foreign_schemas() {
        let a = sample().to_json();
        let mut b = sample();
        b.flight_dumps = 7;
        let text = format!("{a}\n{}\n", b.to_json());
        let last = last_snapshot(&text).unwrap();
        assert_eq!(num(&last, "flight_dumps") as u64, 7);
        assert!(last_snapshot("{\"schema\":\"other\"}").is_err());
        assert!(last_snapshot("").is_err());
    }

    #[test]
    fn durations_render_across_scales() {
        assert_eq!(dur(970.0), "970ns");
        assert_eq!(dur(12_300.0), "12.3µs");
        assert_eq!(dur(45_600_000.0), "45.6ms");
        assert_eq!(dur(1_230_000_000.0), "1.23s");
    }
}
