//! SPECCROSS — software-only speculative barriers for cross-invocation
//! parallelism (Chapter 4 of Huang, *Automatically Exploiting
//! Cross-Invocation Parallelism Using Runtime Information*, 2013).
//!
//! A barrier between two parallel loop invocations asserts that *every* pair
//! of tasks across the boundary might conflict. SPECCROSS bets the opposite:
//! workers run straight through invocation boundaries, a checker thread
//! compares per-task memory-access *signatures* across epochs after the
//! fact, and on the rare conflict the region rolls back to a checkpoint and
//! re-executes the affected epochs with real barriers. Profiling
//! ([`SpecCrossEngine::profile`]) bounds how far threads may run ahead so
//! that dependences seen on a training input never misspeculate.
//!
//! Module map (see DESIGN.md for the paper-section correspondence):
//!
//! * [`position`] — packed epoch/task progress coordinates (§4.2.1).
//! * [`check`] — the pure conflict-detection algorithm and signature log
//!   (Figs. 4.7–4.8).
//! * [`shard`] — address-interleaved partitioning of the checker and the
//!   merge rule for tasks whose signatures straddle shards.
//! * [`profile`] — minimum dependence-distance profiling (§4.4).
//! * [`workload`] — the [`workload::SpecWorkload`] contract: epochs, tasks,
//!   `spec_access` instrumentation, checkpointable state.
//! * [`engine`] — the threaded engine: speculative passes, checkpoint
//!   rendezvous, cooperative recovery, barrier baseline (§4.2.2–4.2.3).
//!
//! # Runtime interface of Table 4.1
//!
//! The thesis exposes a C API; its operations map onto this crate as
//! follows:
//!
//! | Thesis function | Here |
//! |-----------------|------|
//! | `init` | [`SpecCrossEngine::new`] + the initial checkpoint taken at pass start |
//! | `create_threads` | worker/checker spawning inside [`SpecCrossEngine::execute`] |
//! | `enter_barrier` | epoch entry in the worker driver (position epoch bump; checkpoint every Nth epoch) |
//! | `enter_task` | frontier publish + speculative-range gate + position snapshot |
//! | `spec_access` | [`workload::AccessRecorder`] passed to every task |
//! | `exit_task` | signature shipment to the checker |
//! | `send_end_token` | worker completion signalling |
//! | `sync` / `checkpoint` | the rendezvous around irreversible epochs |
//! | `cleanup` | scope join at pass end |
//!
//! # Example
//!
//! See [`engine::SpecCrossEngine`] for an end-to-end example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod check;
pub mod engine;
pub mod position;
pub mod profile;
pub mod shard;
pub mod workload;

pub use check::{CheckRequest, CheckerState, Conflict};
pub use engine::{
    ContainedFault, DegradePolicy, SpecConfig, SpecCrossEngine, SpecError, SpecReport,
};
pub use position::{Position, PositionBoard};
pub use profile::{DistanceProfiler, ProfileReport};
pub use shard::{ShardMap, ShardSet, ShardedChecker, MAX_SHARDS};
pub use workload::{AccessRecorder, CountingRecorder, NullRecorder, SigRecorder, SpecWorkload};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::engine::{
        ContainedFault, DegradePolicy, SpecConfig, SpecCrossEngine, SpecError,
    };
    pub use crate::profile::ProfileReport;
    pub use crate::workload::{AccessRecorder, SpecWorkload};
}
