//! Adaptive spin-then-park waiting.
//!
//! The runtimes' hot waits (a DOMORE worker stalled on a synchronization
//! condition, an SPSC endpoint on a full/empty ring, a thread at the
//! barrier) historically spun with [`Backoff`] and `yield_now` forever.
//! That is the right call for short waits — the paper's synchronization
//! conditions usually resolve within a few hundred cycles — but burns a
//! core for the long tail, which on oversubscribed machines actively steals
//! cycles from the thread being waited on.
//!
//! The policy here: spin briefly, yield a bounded number of times, then
//! *park* on a [`Parker`] in bounded slices. Parks are always timed
//! ([`PARK_SLICE`]), so abort flags and watchdog deadlines are re-checked at
//! a bounded interval even if a wakeup is missed — the existing
//! abort/watchdog semantics of every wait loop are preserved, and a lost
//! [`Parker::unpark`] costs at most one slice of latency, never liveness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crossbeam::utils::Backoff;
use parking_lot::{Condvar, Mutex};

/// Upper bound on one parked sleep. Every park wakes at least this often to
/// re-check its predicate, abort flag and deadline.
pub const PARK_SLICE: Duration = Duration::from_micros(200);

/// Number of `yield_now` rounds after the [`Backoff`] spin budget and before
/// the first park. Generous because yielding is how a waiter donates its
/// timeslice to the thread it waits on when cores are oversubscribed.
const YIELD_ROUNDS: u32 = 16;

/// The spin phase of a spin-then-park wait.
///
/// Call [`AdaptiveSpin::should_park`] once per failed predicate check: it
/// spins (then yields) and returns `false` while the spin budget lasts, and
/// returns `true` — without blocking — once the caller should fall back to a
/// timed [`Parker::park_timeout`].
#[derive(Debug)]
pub struct AdaptiveSpin {
    backoff: Backoff,
    yields: u32,
}

impl AdaptiveSpin {
    /// A fresh spin budget.
    pub fn new() -> Self {
        Self {
            backoff: Backoff::new(),
            yields: 0,
        }
    }

    /// Burns one unit of spin budget; `true` means the budget is exhausted
    /// and the caller should park.
    pub fn should_park(&mut self) -> bool {
        if !self.backoff.is_completed() {
            self.backoff.snooze();
            return false;
        }
        if self.yields < YIELD_ROUNDS {
            self.yields += 1;
            std::thread::yield_now();
            return false;
        }
        true
    }
}

impl Default for AdaptiveSpin {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-thread parking spot with `std::thread::park`-style token semantics
/// built on the `parking_lot` mutex/condvar pair.
///
/// [`Parker::unpark`] deposits a token and wakes the parked owner;
/// [`Parker::park_timeout`] consumes a pending token immediately or blocks
/// until one arrives or the timeout elapses. `unpark` is cheap when the
/// owner is not parked (one relaxed-ish atomic load), which lets publishers
/// call it unconditionally on their hot paths.
///
/// Waiters are expected to re-check their predicate between registering
/// interest and parking, and to park only in bounded slices: the
/// `parked`-flag fast path may skip an unpark that races with park entry,
/// which a timed park converts from a lost wakeup into one slice of added
/// latency.
#[derive(Debug, Default)]
pub struct Parker {
    token: Mutex<bool>,
    cv: Condvar,
    parked: AtomicBool,
}

impl Parker {
    /// A parking spot with no pending token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks for at most `timeout`, or until an [`Parker::unpark`] token is
    /// available (a pending token returns immediately). Spurious returns are
    /// allowed, as with every parking primitive.
    pub fn park_timeout(&self, timeout: Duration) {
        let mut token = self.token.lock();
        if *token {
            *token = false;
            return;
        }
        self.parked.store(true, Ordering::SeqCst);
        self.cv.wait_for(&mut token, timeout);
        self.parked.store(false, Ordering::SeqCst);
        *token = false;
    }

    /// Deposits a wakeup token and wakes the owner if it is parked. A no-op
    /// fast path when the owner is not parked.
    pub fn unpark(&self) {
        if !self.parked.load(Ordering::SeqCst) {
            return;
        }
        let mut token = self.token.lock();
        *token = true;
        drop(token);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn park_timeout_returns_by_itself() {
        let p = Parker::new();
        let start = Instant::now();
        p.park_timeout(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn unpark_releases_a_parked_thread_early() {
        let p = Arc::new(Parker::new());
        let peer = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            let start = Instant::now();
            // Generous timeout: the unpark below must end the park long
            // before it elapses.
            peer.park_timeout(Duration::from_secs(5));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        p.unpark();
        let waited = t.join().unwrap();
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn unpark_without_parked_owner_is_cheap_and_lossy() {
        // No owner parked: the fast path skips the token entirely, and a
        // later park simply waits out its (timed) slice.
        let p = Parker::new();
        p.unpark();
        let start = Instant::now();
        p.park_timeout(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn adaptive_spin_eventually_asks_to_park() {
        let mut spin = AdaptiveSpin::new();
        let mut rounds = 0u32;
        while !spin.should_park() {
            rounds += 1;
            assert!(rounds < 10_000, "spin budget must be bounded");
        }
        // Once exhausted it stays exhausted.
        assert!(spin.should_park());
    }
}
