//! Offline shim for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`]. Reports a best-of-batches ns/iter estimate to
//! stdout — enough to compare runs by hand, with no statistics machinery.

use std::time::Instant;

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of the std version, which callers here already use directly).
pub use std::hint::black_box;

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name`, printing a ns/iter estimate.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            best_ns_per_iter: f64::INFINITY,
        };
        f(&mut bencher);
        if bencher.best_ns_per_iter.is_finite() {
            println!("bench {name}: {:.1} ns/iter", bencher.best_ns_per_iter);
        } else {
            println!("bench {name}: no measurement");
        }
        self
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, keeping the best ns/iter across a few fixed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const BATCHES: usize = 5;
        const ITERS: u32 = 1000;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..ITERS {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
        }
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups (ignored under `harness = true`,
/// where libtest supplies the entry point).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = false;
        Criterion::default().bench_function("probe", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    fn sample(c: &mut Criterion) {
        c.bench_function("sample", |b| b.iter(|| black_box(3) * 2));
    }
    criterion_group!(group_probe, sample);

    #[test]
    fn group_macro_produces_runner() {
        group_probe();
    }
}
