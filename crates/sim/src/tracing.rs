//! Virtual-time trace sinks shared by the simulated executors.
//!
//! The simulators stamp events with their per-thread virtual clocks via
//! [`TraceSink::emit_at`], so two runs over the same inputs produce
//! byte-identical traces — the same JSONL schema the threaded engines emit
//! from wall-clock sinks (see `docs/OBSERVABILITY.md`).

use crossinvoc_runtime::trace::{checker_shard_tid, Trace, TraceSink, MANAGER_TID};

/// One sink per simulated thread plus the service pseudo-threads.
///
/// With capacity zero every sink is disabled and each emit is a single
/// branch, so untraced simulations pay nothing.
#[derive(Debug)]
pub(crate) struct SimSinks {
    /// Worker sinks, indexed by dense thread id.
    pub workers: Vec<TraceSink>,
    /// Sink for manager-level events (checkpoints, degradations).
    pub manager: TraceSink,
    /// Per-checker-shard sinks on the descending service-tid band; a
    /// single-shard simulation has exactly one, on the classic checker tid.
    pub checkers: Vec<TraceSink>,
    /// Region-server attribution id stamped onto the merged trace; 0 (solo)
    /// keeps the wire format byte-identical to the pre-region schema,
    /// mirroring the threaded engines' `region_id` config knob.
    region: u64,
}

impl SimSinks {
    pub fn new(threads: usize, checker_shards: usize, capacity: usize) -> Self {
        Self {
            workers: (0..threads)
                .map(|tid| TraceSink::with_capacity(tid, capacity))
                .collect(),
            manager: TraceSink::with_capacity(MANAGER_TID, capacity),
            checkers: (0..checker_shards)
                .map(|shard| TraceSink::with_capacity(checker_shard_tid(shard), capacity))
                .collect(),
            region: 0,
        }
    }

    /// Attributes the merged trace to a region-server submission id.
    pub fn region(mut self, region: u64) -> Self {
        self.region = region;
        self
    }

    /// Merges every sink into a time-ordered trace; `None` when disabled.
    pub fn finish(self) -> Option<Trace> {
        if !self.manager.is_enabled() {
            return None;
        }
        let mut all = self.workers;
        all.push(self.manager);
        all.extend(self.checkers);
        Some(Trace::from_sinks(all).with_region(self.region))
    }
}
