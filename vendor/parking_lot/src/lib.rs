//! Offline shim for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock` neither returns a `Result` nor propagates poison.
//! Poison-transparency matters for the fault-tolerance story: a worker that
//! panics while holding a runtime lock must not wedge recovery.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // A std mutex would now be poisoned; this one stays usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
