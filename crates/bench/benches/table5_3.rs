//! Table 5.3 — SPECCROSS execution details at 24 threads.
//!
//! Per program: number of tasks, number of epochs, number of checking
//! requests sent to the checker, and the profiled minimum dependence
//! distance (train and ref inputs; `*` = no conflict observed). LOOPDEP is
//! the one program whose train/ref inputs differ structurally, matching
//! the thesis' 500 vs. 800.

use crossinvoc_bench::{spec_params, write_csv};
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::kernel::profile_distance;
use crossinvoc_workloads::loopdep::Loopdep;
use crossinvoc_workloads::{registry, Scale};

fn fmt_distance(d: Option<u64>) -> String {
    d.map_or("*".to_owned(), |v| v.to_string())
}

fn main() {
    println!("Table 5.3: Details of benchmark programs (24 threads)");
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "Benchmark", "#tasks", "#epochs", "#checks", "d(train)", "d(ref)"
    );
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for info in registry().into_iter().filter(|b| b.speccross) {
        let model = info.model(Scale::Figure);
        let params = spec_params(&info, Scale::Figure, 24);
        let result = speccross(model.as_ref(), &params, &cost);
        let train = profile_distance(model.as_ref(), 6).min_distance;
        // Only LOOPDEP ships a structurally different reference input; the
        // other programs' ref inputs keep the train dependence pattern.
        let reference = if info.name == "LOOPDEP" {
            profile_distance(&Loopdep::reference(Scale::Figure, 0xC0FFEE ^ 7), 6).min_distance
        } else {
            train
        };
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>8} {:>8}",
            info.name,
            result.stats.tasks,
            result.stats.epochs,
            result.stats.check_requests,
            fmt_distance(train),
            fmt_distance(reference),
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            info.name,
            result.stats.tasks,
            result.stats.epochs,
            result.stats.check_requests,
            fmt_distance(train),
            fmt_distance(reference),
        ));
    }
    write_csv(
        "table5_3",
        "benchmark,tasks,epochs,check_requests,min_distance_train,min_distance_ref",
        &rows,
    );
}
