//! Small deterministic hash helpers.
//!
//! The Bloom-filter signature scheme ([`crate::signature::BloomSignature`])
//! and several workload generators need fast, seedable, dependency-free
//! mixing functions. `SplitMix64` is the standard choice: a full-period
//! 64-bit permutation with excellent avalanche behaviour, cheap enough to
//! call once per tracked memory access.

/// One step of the SplitMix64 output permutation.
///
/// Maps a 64-bit value to a well-mixed 64-bit value; distinct inputs map to
/// distinct outputs (the function is a bijection).
///
/// ```
/// use crossinvoc_runtime::hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(7), splitmix64(7));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny seedable generator built on [`splitmix64`].
///
/// Used where workloads need deterministic pseudo-random streams without
/// pulling a full RNG crate into the runtime layer.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift range reduction; bias is negligible for the bounds
        // used by the workloads (all far below 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0xDEAD_BEEF), splitmix64(0xDEAD_BEEF));
    }

    #[test]
    fn splitmix_mixes_low_bits() {
        // Consecutive inputs should not produce consecutive outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1 << 32);
    }

    #[test]
    fn generator_streams_differ_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(g.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
