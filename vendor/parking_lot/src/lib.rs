//! Offline shim for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock` neither returns a `Result` nor propagates poison,
//! and the matching [`Condvar`] the runtimes' spin-then-park waits block on.
//! Poison-transparency matters for the fault-tolerance story: a worker that
//! panics while holding a runtime lock must not wedge recovery.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard is optional only so [`Condvar`] can hand it to
/// `std`'s wait primitives (which consume and return guards) and restore it
/// before control returns; outside that window it is always present.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside waits")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside waits")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s guard-borrowing API: waits take
/// `&mut MutexGuard` instead of consuming the guard, and a panicking peer
/// never poisons the associated mutex.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with every
    /// condition variable; callers re-check their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside waits");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside waits");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_releases_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let peer = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*peer;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // A std mutex would now be poisoned; this one stays usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
