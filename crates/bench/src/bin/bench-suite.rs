//! `bench-suite`: the machine-readable scheduling-policy regression
//! harness behind `target/figures/BENCH_3.json`.
//!
//! For every DOMORE-evaluated Table 5.1 kernel the suite runs three
//! configurations — `seq`, `round_robin` dispatch, and `adaptive`
//! dispatch — and reports, per kernel:
//!
//! * **simulated speedups** from the discrete-event model (virtual time,
//!   deterministic: the models carry fixed seeds), which is what the
//!   acceptance criteria are evaluated against — this container has one
//!   core, so parallel wall-clock would measure noise, not scheduling;
//! * **median wall time** of real-thread executions of the same kernels
//!   through [`AccessKernel`] (checksum-validated against the sequential
//!   image every repetition);
//! * **queue-wait histograms** from the runtime's [`Metrics`] — the
//!   stall-wait distribution each policy produced.
//!
//! Full mode additionally gates the regression criteria: adaptive must
//! beat round-robin by ≥1.15× (virtual time) on at least one imbalanced
//! kernel at the configured worker count and may not regress any balanced
//! kernel by more than 5%. `--smoke` keeps every run at test scale and
//! skips the criteria (they are calibrated at figure scale) so CI stays
//! under its time budget; the JSON is still written and validated.
//!
//! ```text
//! bench-suite [--smoke] [--out PATH] [--workers N] [--reps N]
//! bench-suite --validate PATH   # parse an existing BENCH_3.json
//! ```
//!
//! Exit status is nonzero on panic, checksum mismatch, malformed JSON, or
//! (full mode) failed criteria.
//!
//! [`AccessKernel`]: crossinvoc_workloads::AccessKernel
//! [`Metrics`]: crossinvoc_runtime::metrics::Metrics

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use crossinvoc_bench::json::{self, Json};
use crossinvoc_bench::out_dir;
use crossinvoc_domore::prelude::*;
use crossinvoc_runtime::metrics::HistogramSummary;
use crossinvoc_sim::prelude::*;
use crossinvoc_workloads::{registry, AccessKernel, BenchmarkInfo, Scale};

/// Minimum virtual-time win adaptive must show over round-robin on at
/// least one imbalanced kernel (full mode).
const WIN_THRESHOLD: f64 = 1.15;
/// Maximum virtual-time regression tolerated on each balanced kernel.
const BALANCED_TOLERANCE: f64 = 0.95;

struct Args {
    smoke: bool,
    out: PathBuf,
    workers: usize,
    reps: usize,
    validate: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: out_dir().join("BENCH_3.json"),
        workers: 8,
        reps: 0, // resolved after --smoke is known
        validate: None,
    };
    let mut reps: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--reps" => {
                reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--validate" => args.validate = Some(PathBuf::from(value("--validate")?)),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    args.reps = reps.unwrap_or(if args.smoke { 1 } else { 5 });
    if args.workers == 0 || args.reps == 0 {
        return Err("--workers and --reps must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.validate {
        return match std::fs::read_to_string(path) {
            Ok(text) => match validate_report(&text) {
                Ok(kernels) => {
                    println!(
                        "{}: valid BENCH_3 report, {kernels} kernels",
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}: invalid: {e}", path.display());
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    run_suite(&args)
}

/// One kernel's simulated timings for one dispatch policy.
struct SimRow {
    dispatch: Dispatch,
    total_ns: u64,
    speedup_vs_seq: f64,
    sync_conditions: u64,
    stalls: u64,
}

/// One kernel's real-thread timings for one configuration.
struct RealRow {
    name: &'static str,
    wall_ns: Vec<u64>,
    speedup_vs_seq: f64,
    stall_wait: Option<HistogramSummary>,
}

struct KernelReport {
    name: &'static str,
    imbalanced: bool,
    sim_scale: Scale,
    sim_seq_ns: u64,
    sim: Vec<SimRow>,
    real: Vec<RealRow>,
}

impl KernelReport {
    fn sim_ratio(&self) -> f64 {
        let rr = self.sim.iter().find(|r| r.dispatch == Dispatch::RoundRobin);
        let ad = self.sim.iter().find(|r| r.dispatch == Dispatch::Adaptive);
        match (rr, ad) {
            (Some(rr), Some(ad)) => rr.total_ns as f64 / ad.total_ns as f64,
            _ => 1.0,
        }
    }
}

fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

fn run_suite(args: &Args) -> ExitCode {
    let sim_scale = if args.smoke {
        Scale::Test
    } else {
        Scale::Figure
    };
    let cost = CostModel::default();
    let kernels: Vec<BenchmarkInfo> = registry().into_iter().filter(|b| b.domore).collect();
    let mut reports = Vec::new();
    let suite_start = Instant::now();

    for info in &kernels {
        println!("[{}] simulating at {sim_scale:?} scale", info.name);
        let model = info.model(sim_scale);
        let seq_ns = sequential(model.as_ref(), &cost).total_ns;
        let mut sim = Vec::new();
        for dispatch in [Dispatch::RoundRobin, Dispatch::Adaptive] {
            let mut policy = dispatch.policy();
            let r = crossinvoc_sim::domore(model.as_ref(), args.workers, policy.as_mut(), &cost);
            sim.push(SimRow {
                dispatch,
                total_ns: r.total_ns,
                speedup_vs_seq: r.speedup_over(seq_ns),
                sync_conditions: r.stats.sync_conditions,
                stalls: r.stats.stalls,
            });
        }

        // Real threads always run the test-scale kernel: wall time on this
        // host measures harness overhead, not parallel speedup, so small
        // checksum-validated runs are the honest configuration.
        println!(
            "[{}] executing on real threads ({} reps)",
            info.name, args.reps
        );
        let kernel = AccessKernel::from_model(info.model(Scale::Test));
        let expected = kernel.sequential_checksum();
        let mut real = Vec::new();

        let mut seq_walls = Vec::with_capacity(args.reps);
        for _ in 0..args.reps {
            kernel.reset();
            let t = Instant::now();
            for inv in 0..DomoreWorkload::num_invocations(&kernel) {
                for iter in 0..DomoreWorkload::num_iterations(&kernel, inv) {
                    kernel.execute_iteration(inv, iter, 0);
                }
            }
            seq_walls.push(t.elapsed().as_nanos() as u64);
            if kernel.checksum() != expected {
                eprintln!("[{}] sequential checksum mismatch", info.name);
                return ExitCode::FAILURE;
            }
        }
        let seq_median = median(&seq_walls).max(1);
        real.push(RealRow {
            name: "seq",
            wall_ns: seq_walls,
            speedup_vs_seq: 1.0,
            stall_wait: None,
        });

        for dispatch in [Dispatch::RoundRobin, Dispatch::Adaptive] {
            let mut walls = Vec::with_capacity(args.reps);
            let mut stall_wait = None;
            for _ in 0..args.reps {
                kernel.reset();
                let t = Instant::now();
                let report = DomoreRuntime::new(DomoreConfig::with_workers(args.workers))
                    .with_dispatch(dispatch)
                    .execute(&kernel);
                walls.push(t.elapsed().as_nanos() as u64);
                let report = match report {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("[{}] {} run failed: {e}", info.name, dispatch.name());
                        return ExitCode::FAILURE;
                    }
                };
                if kernel.checksum() != expected {
                    eprintln!(
                        "[{}] checksum mismatch under {} dispatch",
                        info.name,
                        dispatch.name()
                    );
                    return ExitCode::FAILURE;
                }
                stall_wait = Some(report.metrics.stall_wait);
            }
            real.push(RealRow {
                name: dispatch.name(),
                speedup_vs_seq: seq_median as f64 / median(&walls).max(1) as f64,
                wall_ns: walls,
                stall_wait,
            });
        }
        kernel.reset();

        reports.push(KernelReport {
            name: info.name,
            imbalanced: info.imbalanced(),
            sim_scale,
            sim_seq_ns: seq_ns,
            sim,
            real,
        });
    }

    // Criteria (full mode only: smoke runs at test scale, where the models
    // are too small for the calibrated thresholds).
    let best_win = reports
        .iter()
        .filter(|r| r.imbalanced)
        .map(|r| (r.name, r.sim_ratio()))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let worst_balanced = reports
        .iter()
        .filter(|r| !r.imbalanced)
        .map(|r| (r.name, r.sim_ratio()))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    let pass = !args.smoke
        && best_win.is_some_and(|(_, w)| w >= WIN_THRESHOLD)
        && worst_balanced.is_none_or(|(_, w)| w >= BALANCED_TOLERANCE);

    let json = render_json(args, &reports, best_win, worst_balanced, pass);
    if let Err(e) = std::fs::create_dir_all(args.out.parent().unwrap_or(&args.out)) {
        eprintln!("bench-suite: creating output directory: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench-suite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    // Self-check: the file we just wrote must parse. A malformed report is
    // a bug in this harness and must fail the run (and the CI step).
    if let Err(e) = validate_report(&json) {
        eprintln!("bench-suite: produced malformed JSON: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[wrote {}] {} kernels in {:.1}s",
        args.out.display(),
        reports.len(),
        suite_start.elapsed().as_secs_f64()
    );
    for r in &reports {
        println!(
            "  {:<16} adaptive/round_robin (virtual) = {:.3}{}",
            r.name,
            r.sim_ratio(),
            if r.imbalanced { "  [imbalanced]" } else { "" }
        );
    }
    if args.smoke {
        println!("smoke mode: criteria not evaluated (test-scale models)");
        return ExitCode::SUCCESS;
    }
    if let Some((name, win)) = best_win {
        println!("best imbalanced win: {win:.3} on {name} (need ≥ {WIN_THRESHOLD})");
    }
    if let Some((name, worst)) = worst_balanced {
        println!("worst balanced ratio: {worst:.3} on {name} (need ≥ {BALANCED_TOLERANCE})");
    }
    if pass {
        println!("criteria: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("criteria: FAIL");
        ExitCode::FAILURE
    }
}

// ---- JSON rendering (hand-rolled: the workspace carries no serde) ----

fn render_json(
    args: &Args,
    reports: &[KernelReport],
    best_win: Option<(&str, f64)>,
    worst_balanced: Option<(&str, f64)>,
    pass: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"crossinvoc-bench-3\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"workers\": {},", args.workers);
    let _ = writeln!(s, "  \"reps\": {},", args.reps);
    let _ = writeln!(s, "  \"smoke\": {},", args.smoke);
    s.push_str("  \"criteria\": {\n");
    let _ = writeln!(s, "    \"evaluated\": {},", !args.smoke);
    let _ = writeln!(s, "    \"adaptive_min_win\": {WIN_THRESHOLD},");
    let _ = writeln!(s, "    \"balanced_min_ratio\": {BALANCED_TOLERANCE},");
    match best_win {
        Some((name, win)) => {
            let _ = writeln!(s, "    \"best_imbalanced_win\": {win:.4},");
            let _ = writeln!(s, "    \"best_imbalanced_kernel\": \"{name}\",");
        }
        None => {
            s.push_str("    \"best_imbalanced_win\": null,\n");
            s.push_str("    \"best_imbalanced_kernel\": null,\n");
        }
    }
    match worst_balanced {
        Some((name, w)) => {
            let _ = writeln!(s, "    \"worst_balanced_ratio\": {w:.4},");
            let _ = writeln!(s, "    \"worst_balanced_kernel\": \"{name}\",");
        }
        None => {
            s.push_str("    \"worst_balanced_ratio\": null,\n");
            s.push_str("    \"worst_balanced_kernel\": null,\n");
        }
    }
    let _ = writeln!(s, "    \"pass\": {pass}");
    s.push_str("  },\n");
    s.push_str("  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"imbalanced\": {},", r.imbalanced);
        s.push_str("      \"sim\": {\n");
        let _ = writeln!(
            s,
            "        \"scale\": \"{}\",",
            match r.sim_scale {
                Scale::Test => "test",
                Scale::Figure => "figure",
            }
        );
        let _ = writeln!(s, "        \"seq_ns\": {},", r.sim_seq_ns);
        let _ = writeln!(
            s,
            "        \"adaptive_over_round_robin\": {:.4},",
            r.sim_ratio()
        );
        s.push_str("        \"configs\": [\n");
        for (j, row) in r.sim.iter().enumerate() {
            let _ = write!(
                s,
                "          {{\"dispatch\": \"{}\", \"total_ns\": {}, \
                 \"speedup_vs_seq\": {:.4}, \"sync_conditions\": {}, \"stalls\": {}}}",
                row.dispatch.name(),
                row.total_ns,
                row.speedup_vs_seq,
                row.sync_conditions,
                row.stalls
            );
            s.push_str(if j + 1 < r.sim.len() { ",\n" } else { "\n" });
        }
        s.push_str("        ]\n      },\n");
        s.push_str("      \"real\": {\n");
        s.push_str("        \"scale\": \"test\",\n");
        s.push_str("        \"configs\": [\n");
        for (j, row) in r.real.iter().enumerate() {
            s.push_str("          {\n");
            let _ = writeln!(s, "            \"config\": \"{}\",", row.name);
            let _ = writeln!(
                s,
                "            \"median_wall_ns\": {},",
                median(&row.wall_ns)
            );
            let _ = writeln!(
                s,
                "            \"speedup_vs_seq\": {:.4},",
                row.speedup_vs_seq
            );
            let walls: Vec<String> = row.wall_ns.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(s, "            \"wall_ns\": [{}],", walls.join(", "));
            match &row.stall_wait {
                Some(h) => {
                    s.push_str("            \"stall_wait\": {\n");
                    let _ = writeln!(s, "              \"count\": {},", h.count);
                    let _ = writeln!(s, "              \"sum_ns\": {},", h.sum_ns);
                    let _ = writeln!(s, "              \"mean_ns\": {:.1},", h.mean_ns());
                    let _ = writeln!(
                        s,
                        "              \"p50_ns\": {},",
                        h.quantile_upper_bound(0.50)
                    );
                    let _ = writeln!(
                        s,
                        "              \"p90_ns\": {},",
                        h.quantile_upper_bound(0.90)
                    );
                    let _ = writeln!(
                        s,
                        "              \"p99_ns\": {},",
                        h.quantile_upper_bound(0.99)
                    );
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    let _ = writeln!(
                        s,
                        "              \"log2_buckets\": [{}]",
                        buckets.join(", ")
                    );
                    s.push_str("            }\n");
                }
                None => s.push_str("            \"stall_wait\": null\n"),
            }
            s.push_str("          }");
            s.push_str(if j + 1 < r.real.len() { ",\n" } else { "\n" });
        }
        s.push_str("        ]\n      }\n    }");
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ---- JSON validation ----
//
// Parsing is the shared `crossinvoc_bench::json` reader (the workspace
// vendors no JSON library); this file only checks the BENCH_3 structure.

/// Parses `text` and checks the BENCH_3 structural contract. Returns the
/// kernel count.
fn validate_report(text: &str) -> Result<usize, String> {
    let root = json::parse(text)?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == "crossinvoc-bench-3" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let criteria = root.get("criteria").ok_or("missing criteria")?;
    if !matches!(criteria.get("pass"), Some(Json::Bool(_))) {
        return Err("criteria.pass must be a bool".into());
    }
    let kernels = match root.get("kernels") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("kernels must be a non-empty array".into()),
    };
    for kernel in kernels {
        let name = match kernel.get("name") {
            Some(Json::Str(n)) => n.clone(),
            _ => return Err("kernel missing name".into()),
        };
        for section in ["sim", "real"] {
            let configs = kernel
                .get(section)
                .and_then(|s| s.get("configs"))
                .ok_or_else(|| format!("{name}: missing {section}.configs"))?;
            match configs {
                Json::Arr(items) if !items.is_empty() => {}
                _ => return Err(format!("{name}: {section}.configs empty")),
            }
        }
    }
    Ok(kernels.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["{", "[1,]", "{\"a\": }", "{} trailing", "{\"a\"; 1}"] {
            assert!(validate_report(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn structural_contract_is_enforced() {
        // Parses fine, but violates the report shape.
        let err =
            validate_report(r#"{"schema": "crossinvoc-bench-3", "kernels": []}"#).unwrap_err();
        assert!(err.contains("criteria"), "{err}");
    }
}
