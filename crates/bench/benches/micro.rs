//! Criterion micro-benchmarks for the runtime primitives the engines are
//! built on: the SPSC queue (scheduler→worker dispatch latency), shadow
//! memory updates (per-iteration scheduling cost), access signatures
//! (per-task checking cost) and the pure scheduler logic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crossinvoc_domore::logic::SchedulerLogic;
use crossinvoc_runtime::signature::{AccessKind, AccessSignature, BloomSignature, RangeSignature};
use crossinvoc_runtime::spsc::Queue;
use crossinvoc_runtime::ShadowMemory;

fn bench_spsc(c: &mut Criterion) {
    let (tx, rx) = Queue::<u64>::with_capacity(1 << 10);
    c.bench_function("spsc_produce_consume", |b| {
        b.iter(|| {
            tx.produce(black_box(42));
            black_box(rx.consume());
        })
    });
}

fn bench_shadow(c: &mut Criterion) {
    let mut dense = ShadowMemory::dense(1 << 16);
    let mut addr = 0usize;
    c.bench_function("shadow_dense_update", |b| {
        b.iter(|| {
            addr = (addr + 7919) & 0xFFFF;
            black_box(dense.update(black_box(addr), 1, 1));
        })
    });
    let mut sparse = ShadowMemory::sparse();
    c.bench_function("shadow_sparse_update", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(7919);
            black_box(sparse.update(black_box(addr), 1, 1));
        })
    });
}

fn bench_signatures(c: &mut Criterion) {
    c.bench_function("range_signature_record8_compare", |b| {
        b.iter(|| {
            let mut a = RangeSignature::empty();
            let mut x = RangeSignature::empty();
            for k in 0..8 {
                a.record(black_box(k * 3), AccessKind::Write);
                x.record(black_box(k * 3 + 100), AccessKind::Write);
            }
            black_box(a.conflicts_with(&x))
        })
    });
    c.bench_function("bloom_signature_record8_compare", |b| {
        b.iter(|| {
            let mut a = BloomSignature::empty();
            let mut x = BloomSignature::empty();
            for k in 0..8 {
                a.record(black_box(k * 3), AccessKind::Write);
                x.record(black_box(k * 3 + 100), AccessKind::Write);
            }
            black_box(a.conflicts_with(&x))
        })
    });
}

fn bench_scheduler_logic(c: &mut Criterion) {
    c.bench_function("scheduler_logic_schedule", |b| {
        let mut logic = SchedulerLogic::with_dense_shadow(1 << 12);
        let mut conds = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            conds.clear();
            i = (i + 13) & 0xFFF;
            black_box(logic.schedule(i & 7, &[i, (i + 1) & 0xFFF], &mut conds));
        })
    });
}

criterion_group!(
    benches,
    bench_spsc,
    bench_shadow,
    bench_signatures,
    bench_scheduler_logic
);
criterion_main!(benches);
