//! LLUBENCH — the LLVMBench linked-list update micro-benchmark
//! (Table 5.1, Figs. 5.1(e)/5.2(f)).
//!
//! Each task walks and updates one linked list. Lists live in a node pool
//! partitioned per list and rotated across epochs (list updates allocate
//! fresh nodes), so conflicts between *nearby* epochs never occur —
//! Table 5.3 reports no profiled dependence at all (`*`), making LLUBENCH
//! the ideal speculation target: barriers were pure overhead.

use crossinvoc_runtime::hash::splitmix64;
use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_sim::SimWorkload;

use crate::scale::Scale;

/// The LLUBENCH workload model.
#[derive(Debug, Clone)]
pub struct Llubench {
    /// Lists (tasks per epoch).
    lists: usize,
    /// Epochs (list-update passes).
    epochs: usize,
    /// Nodes per list region.
    nodes: usize,
    /// Pool rotation: epochs `e` and `e + rotation` reuse node regions.
    rotation: usize,
    seed: u64,
}

impl Llubench {
    /// Builds the model at the given scale with a fixed input seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            lists: scale.pick(16, 55),
            epochs: scale.pick(20, 2000),
            nodes: 4,
            rotation: 64,
            seed,
        }
    }

    /// Node region of list `list` at epoch `epoch`.
    fn region(&self, epoch: usize, list: usize) -> usize {
        ((epoch % self.rotation) * self.lists + list) * self.nodes
    }
}

impl SimWorkload for Llubench {
    fn num_invocations(&self) -> usize {
        self.epochs
    }

    fn num_iterations(&self, _inv: usize) -> usize {
        self.lists
    }

    fn iteration_cost(&self, inv: usize, iter: usize) -> u64 {
        // Pointer chasing: long, cache-miss-dominated, uneven.
        6_000 + splitmix64(self.seed ^ ((inv * 389 + iter) as u64)) % 3_000
    }

    fn accesses(&self, inv: usize, iter: usize, out: &mut Vec<(usize, AccessKind)>) {
        let base = self.region(inv, iter);
        for n in 0..self.nodes {
            out.push((base + n, AccessKind::Write));
        }
    }

    fn sched_cost(&self, _inv: usize, _iter: usize) -> u64 {
        // Table 5.2: 1.7% scheduler/worker ratio.
        125
    }

    fn address_space(&self) -> Option<usize> {
        Some(self.rotation * self.lists * self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{profile_distance, AccessKernel};
    use crossinvoc_runtime::RangeSignature;
    use crossinvoc_speccross::prelude::*;
    use crossinvoc_speccross::SpecCrossEngine;

    #[test]
    fn no_dependence_within_the_profiling_window() {
        // Table 5.3 reports `*` for LLUBENCH: no conflicts observed.
        let l = Llubench::new(Scale::Test, 6);
        let p = profile_distance(&l, 8);
        assert_eq!(p.min_distance, None);
        assert_eq!(p.conflicts, 0);
    }

    #[test]
    fn regions_are_disjoint_within_an_epoch() {
        let l = Llubench::new(Scale::Test, 6);
        let mut seen = std::collections::HashSet::new();
        for t in 0..l.lists {
            let mut v = Vec::new();
            l.accesses(3, t, &mut v);
            for (addr, _) in v {
                assert!(seen.insert(addr));
            }
        }
    }

    #[test]
    fn ungated_speculation_is_safe_and_clean() {
        let model = Llubench::new(Scale::Test, 6);
        let kernel = AccessKernel::from_model(model);
        let expected = kernel.sequential_checksum();
        let report = SpecCrossEngine::<RangeSignature>::new(SpecConfig::with_workers(3))
            .execute(&kernel)
            .unwrap();
        assert_eq!(kernel.checksum(), expected);
        assert_eq!(
            report.stats.misspeculations, 0,
            "no conflicts exist within any speculation window"
        );
    }
}
