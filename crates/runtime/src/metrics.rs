//! Metrics registry: [`RegionStats`] counters plus wait-time histograms.
//!
//! The counters of [`crate::stats`] say *how often* things happened; the
//! figures of the evaluation chapter also need *how long* — how many
//! nanoseconds workers spent inside barrier waits (Fig. 4.3) and stalled on
//! synchronization conditions or the speculative-range gate (Table 5.2's
//! scheduler/worker story). [`Metrics`] bundles the existing counters with
//! two log₂-bucketed [`Histogram`]s for those durations. Recording is
//! lock-free (one `fetch_add` pair per sample) and the registry is shared
//! by reference across worker threads exactly like [`RegionStats`] is.
//!
//! Unlike [tracing](crate::trace), which captures individual events and can
//! be disabled, metrics are always on: a histogram sample costs two relaxed
//! atomic adds, cheap enough for every wait site.
//!
//! # Example
//!
//! ```
//! use crossinvoc_runtime::metrics::Metrics;
//!
//! let m = Metrics::new();
//! m.stats().add_task();
//! m.record_barrier_wait(1_500);   // ns
//! m.record_barrier_wait(900);
//!
//! let snap = m.snapshot();        // exact once writers are joined
//! assert_eq!(snap.stats.tasks, 1);
//! assert_eq!(snap.barrier_wait.count, 2);
//! assert_eq!(snap.barrier_wait.sum_ns, 2_400);
//! assert!(snap.barrier_wait.mean_ns() > 1_000.0);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::{RegionStats, StatsSummary};

/// Number of log₂ buckets: bucket `i` holds samples in `[2^i, 2^(i+1))` ns
/// (bucket 0 also holds zero). 40 buckets cover up to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed duration histogram (nanosecond samples).
///
/// Each [`Histogram::record`] costs one relaxed `fetch_add` on the bucket
/// and one on the sum — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample (saturates into the last bucket).
    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Plain-value snapshot; exact under the same contract as
    /// [`RegionStats::snapshot`] (writers joined or otherwise quiesced).
    pub fn snapshot(&self) -> HistogramSummary {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Acquire));
        HistogramSummary {
            buckets,
            count: buckets.iter().sum(),
            sum_ns: self.sum_ns.load(Ordering::Acquire),
            max_ns: self.max_ns.load(Ordering::Acquire),
        }
    }
}

/// Plain-value snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Sample count per log₂ bucket (`buckets[i]` counts samples in
    /// `[2^i, 2^(i+1))` ns; the last bucket saturates).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample observed in nanoseconds (exact, not a bucket bound).
    pub max_ns: u64,
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSummary {
    /// Mean sample in nanoseconds (0 for an empty histogram).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, ns) of the bucket containing the p-quantile
    /// (`0.0 ..= 1.0`), a conservative percentile estimate. Returns 0 for an
    /// empty histogram.
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// One line: count, mean, the derived p50/p95/p99 bucket upper bounds, the
/// exact max, then the nonzero raw buckets — so reports show both the
/// derived columns and the underlying distribution.
impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "count=0");
        }
        write!(
            f,
            "count={} mean={:.0}ns p50\u{2264}{}ns p95\u{2264}{}ns p99\u{2264}{}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.quantile_upper_bound(0.50),
            self.quantile_upper_bound(0.95),
            self.quantile_upper_bound(0.99),
            self.max_ns,
        )?;
        write!(f, " buckets[")?;
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "2^{i}:{n}")?;
        }
        write!(f, "]")
    }
}

/// The metrics registry one engine execution writes into: the
/// [`RegionStats`] counters plus wait-duration histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    stats: RegionStats,
    barrier_wait_ns: Histogram,
    stall_wait_ns: Histogram,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter block (same API the engines already use).
    pub fn stats(&self) -> &RegionStats {
        &self.stats
    }

    /// Records time one thread spent in a barrier / checkpoint-rendezvous
    /// wait.
    pub fn record_barrier_wait(&self, ns: u64) {
        self.barrier_wait_ns.record(ns);
    }

    /// Records time one thread spent stalled on a synchronization condition
    /// or the speculative-range gate.
    pub fn record_stall_wait(&self, ns: u64) {
        self.stall_wait_ns.record(ns);
    }

    /// Exact end-of-run snapshot, under the [`RegionStats::snapshot`]
    /// contract (writers joined first).
    pub fn snapshot(&self) -> MetricsSummary {
        MetricsSummary {
            stats: self.stats.snapshot(),
            barrier_wait: self.barrier_wait_ns.snapshot(),
            stall_wait: self.stall_wait_ns.snapshot(),
        }
    }
}

/// Plain-value snapshot of a [`Metrics`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSummary {
    /// Counter snapshot.
    pub stats: StatsSummary,
    /// Barrier/rendezvous wait durations.
    pub barrier_wait: HistogramSummary,
    /// Synchronization-condition / gate stall durations.
    pub stall_wait: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(4), 2);
        assert_eq!(Histogram::bucket(1023), 9);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_accumulates_count_and_sum() {
        let h = Histogram::new();
        for ns in [0, 1, 2, 100, 1_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 1_000_103);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert!((s.mean_ns() - 1_000_103.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bound_brackets_the_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert!(s.quantile_upper_bound(0.5) <= 16);
        assert!(s.quantile_upper_bound(1.0) >= 1_000_000);
        assert_eq!(HistogramSummary::default().quantile_upper_bound(0.5), 0);
    }

    /// Pins the quantile math on a fully known distribution: samples
    /// 1..=100 land 1, 2, 4, 8, 16, 32, 37 deep in buckets 0..=6, so the
    /// cumulative counts are 1, 3, 7, 15, 31, 63, 100. Rank 50 (p50) falls
    /// in bucket 5 → upper bound 2^6 = 64; ranks 95 and 99 fall in bucket 6
    /// → 2^7 = 128. The max is exact, not a bucket bound.
    #[test]
    fn quantiles_and_max_pinned_on_known_distribution() {
        let h = Histogram::new();
        for ns in 1..=100u64 {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.50), 64);
        assert_eq!(s.quantile_upper_bound(0.95), 128);
        assert_eq!(s.quantile_upper_bound(0.99), 128);
        assert_eq!(s.max_ns, 100);
        let line = s.to_string();
        assert!(line.contains("p50\u{2264}64ns"), "{line}");
        assert!(line.contains("p95\u{2264}128ns"), "{line}");
        assert!(line.contains("p99\u{2264}128ns"), "{line}");
        assert!(line.contains("max=100ns"), "{line}");
        assert!(line.contains("2^6:37"), "raw buckets still shown: {line}");
        assert_eq!(HistogramSummary::default().to_string(), "count=0");
    }

    #[test]
    fn metrics_bundle_counters_and_histograms() {
        let m = Metrics::new();
        m.stats().add_task();
        m.stats().add_stall();
        m.record_barrier_wait(500);
        m.record_stall_wait(2_000);
        let s = m.snapshot();
        assert_eq!(s.stats.tasks, 1);
        assert_eq!(s.stats.stalls, 1);
        assert_eq!(s.barrier_wait.count, 1);
        assert_eq!(s.barrier_wait.sum_ns, 500);
        assert_eq!(s.stall_wait.count, 1);
        assert_eq!(s.stall_wait.sum_ns, 2_000);
    }

    #[test]
    fn histograms_are_thread_safe() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.record_barrier_wait(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.barrier_wait.count, 4000);
        assert_eq!(s.barrier_wait.sum_ns, 4 * (0..1000).sum::<u64>());
    }
}
