//! The PIR interpreter: the semantics of record.
//!
//! Every transformation in this crate is validated by interpretation: the
//! transformed plan must leave memory byte-identical to sequential
//! interpretation of the original program. The interpreter also doubles as
//! the dependence *profiler* — [`Interp::run_traced`] streams every memory
//! access with its statement of origin, from which manifest rates
//! (Fig. 3.1's 72.4%) and dependence distances are measured.
//!
//! Memory is a single linearized array of `i64` cells
//! ([`crossinvoc_runtime::SharedSlice`] underneath), so a cell's flat index
//! *is* the address the runtime crates synchronize on.

use crossinvoc_runtime::signature::AccessKind;
use crossinvoc_runtime::SharedSlice;

use crate::ir::{BinOp, CallEffect, Expr, Program, Stmt, StmtId};

/// Linearized program memory.
///
/// Concurrent use is governed by the same contract as
/// [`SharedSlice`]: the caller's scheduler must order
/// conflicting accesses. The safe constructors and snapshot methods require
/// exclusive access.
#[derive(Debug)]
pub struct Memory {
    cells: SharedSlice<i64>,
}

impl Memory {
    /// Zero-initialized memory sized for `program`.
    pub fn zeroed(program: &Program) -> Self {
        Self {
            cells: SharedSlice::from_vec(vec![0; program.memory_len()]),
        }
    }

    /// Memory initialized from explicit contents.
    ///
    /// # Panics
    ///
    /// Panics if `contents` does not match the program's memory size.
    pub fn from_contents(program: &Program, contents: Vec<i64>) -> Self {
        assert_eq!(
            contents.len(),
            program.memory_len(),
            "contents must cover the whole linearized memory"
        );
        Self {
            cells: SharedSlice::from_vec(contents),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads a cell.
    ///
    /// # Safety
    ///
    /// See [`SharedSlice::read`].
    pub unsafe fn read(&self, addr: usize) -> i64 {
        self.cells.read(addr)
    }

    /// Writes a cell.
    ///
    /// # Safety
    ///
    /// See [`SharedSlice::write`].
    pub unsafe fn write(&self, addr: usize, value: i64) {
        self.cells.write(addr, value)
    }

    /// Copies memory out (exclusive access).
    pub fn snapshot(&mut self) -> Vec<i64> {
        self.cells.snapshot()
    }

    /// Copies memory out through a shared reference.
    ///
    /// # Safety
    ///
    /// No other thread may be accessing any cell (all workers quiesced, as
    /// at a SPECCROSS checkpoint or recovery rendezvous).
    pub unsafe fn snapshot_quiesced(&self) -> Vec<i64> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }

    /// Overwrites memory through a shared reference.
    ///
    /// # Safety
    ///
    /// Same quiescence requirement as [`Memory::snapshot_quiesced`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub unsafe fn restore_quiesced(&self, contents: &[i64]) {
        assert_eq!(contents.len(), self.len(), "length mismatch in restore");
        for (i, &v) in contents.iter().enumerate() {
            self.write(i, v);
        }
    }

    /// Overwrites memory (exclusive access).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn restore(&mut self, contents: &[i64]) {
        self.cells.fill(contents)
    }
}

/// Scalar environment, indexed by [`crate::ir::VarId`].
pub type Env = Vec<i64>;

/// One traced memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Statement that performed the access.
    pub stmt: StmtId,
    /// Flat memory address.
    pub addr: usize,
    /// Read or write.
    pub kind: AccessKind,
}

/// Deterministic mixing used to give opaque calls observable semantics.
fn call_mix(seed: u64, x: i64) -> i64 {
    crossinvoc_runtime::hash::splitmix64(seed ^ x as u64) as i64
}

/// The interpreter for one [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Interp<'p> {
    program: &'p Program,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter over `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// Evaluates a scalar expression.
    pub fn eval(&self, expr: &Expr, env: &Env) -> i64 {
        match expr {
            Expr::Const(c) => *c,
            Expr::Var(v) => env[v.0],
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.eval(a, env), self.eval(b, env));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.rem_euclid(b)
                        }
                    }
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Eq => i64::from(a == b),
                }
            }
        }
    }

    fn addr(&self, array: crate::ir::ArrayId, index: i64) -> usize {
        let len = self.program.arrays()[array.0].len;
        let idx = usize::try_from(index).unwrap_or_else(|_| {
            panic!(
                "negative array index {index} into {}",
                self.program.arrays()[array.0].name
            )
        });
        assert!(
            idx < len,
            "index {idx} out of bounds for array {} (len {len})",
            self.program.arrays()[array.0].name
        );
        self.program.array_base(array) + idx
    }

    /// Runs the whole program on exclusively held memory, returning the
    /// final scalar environment.
    pub fn run(&self, mem: &mut Memory) -> Env {
        let mut env = vec![0; self.program.vars().len()];
        // SAFETY: `&mut Memory` makes this thread the sole accessor.
        unsafe { self.exec_stmts(self.program.body(), &mut env, mem, &mut None) };
        env
    }

    /// Runs the whole program, streaming every memory access to `sink`.
    pub fn run_traced(&self, mem: &mut Memory, sink: &mut dyn FnMut(TraceEvent)) -> Env {
        let mut env = vec![0; self.program.vars().len()];
        let mut sink: Option<&mut dyn FnMut(TraceEvent)> = Some(sink);
        // SAFETY: `&mut Memory` makes this thread the sole accessor.
        unsafe { self.exec_stmts(self.program.body(), &mut env, mem, &mut sink) };
        env
    }

    /// Executes a statement sequence under an explicit environment.
    ///
    /// # Safety
    ///
    /// Shared-memory accesses are unordered with respect to other threads;
    /// the caller's scheduler must guarantee that any concurrently executing
    /// statement sequence touches disjoint addresses or is ordered by a
    /// happens-before edge (the DOMORE/SPECCROSS runtime contracts).
    pub unsafe fn exec_stmts(
        &self,
        stmts: &[StmtId],
        env: &mut Env,
        mem: &Memory,
        sink: &mut Option<&mut dyn FnMut(TraceEvent)>,
    ) {
        for &id in stmts {
            self.exec_stmt(id, env, mem, sink);
        }
    }

    unsafe fn exec_stmt(
        &self,
        id: StmtId,
        env: &mut Env,
        mem: &Memory,
        sink: &mut Option<&mut dyn FnMut(TraceEvent)>,
    ) {
        match self.program.stmt(id) {
            Stmt::Assign { var, expr } => env[var.0] = self.eval(expr, env),
            Stmt::Load { var, array, index } => {
                let addr = self.addr(*array, self.eval(index, env));
                if let Some(s) = sink {
                    s(TraceEvent {
                        stmt: id,
                        addr,
                        kind: AccessKind::Read,
                    });
                }
                env[var.0] = mem.read(addr);
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let addr = self.addr(*array, self.eval(index, env));
                if let Some(s) = sink {
                    s(TraceEvent {
                        stmt: id,
                        addr,
                        kind: AccessKind::Write,
                    });
                }
                mem.write(addr, self.eval(value, env));
            }
            Stmt::Call { name, args, effect } => {
                self.exec_call(id, name, args, effect, env, mem, sink)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond, env) != 0 {
                    self.exec_stmts(then_body, env, mem, sink);
                } else {
                    self.exec_stmts(else_body, env, mem, sink);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let (from, to) = (self.eval(from, env), self.eval(to, env));
                let mut i = from;
                while i < to {
                    env[var.0] = i;
                    self.exec_stmts(body, env, mem, sink);
                    i += 1;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    unsafe fn exec_call(
        &self,
        id: StmtId,
        name: &str,
        args: &[Expr],
        effect: &CallEffect,
        env: &mut Env,
        mem: &Memory,
        sink: &mut Option<&mut dyn FnMut(TraceEvent)>,
    ) {
        // Deterministic uninterpreted semantics: fold the name and scalar
        // arguments, read one declared element per readable array, then
        // write one declared element per writable array. The touched
        // element is selected by the first argument, matching how the
        // thesis' examples use calls (`update(&C[j])`).
        let mut acc = name.bytes().fold(0u64, |h, b| {
            crossinvoc_runtime::hash::splitmix64(h ^ b as u64)
        }) as i64;
        let mut first = 0i64;
        for (k, a) in args.iter().enumerate() {
            let v = self.eval(a, env);
            if k == 0 {
                first = v;
            }
            acc = call_mix(acc as u64, v);
        }
        for &array in &effect.may_read {
            let len = self.program.arrays()[array.0].len as i64;
            let addr = self.addr(array, first.rem_euclid(len.max(1)));
            if let Some(s) = sink {
                s(TraceEvent {
                    stmt: id,
                    addr,
                    kind: AccessKind::Read,
                });
            }
            acc = call_mix(acc as u64, mem.read(addr));
        }
        for &array in &effect.may_write {
            let len = self.program.arrays()[array.0].len as i64;
            let addr = self.addr(array, first.rem_euclid(len.max(1)));
            if let Some(s) = sink {
                s(TraceEvent {
                    stmt: id,
                    addr,
                    kind: AccessKind::Write,
                });
            }
            let old = mem.read(addr);
            mem.write(addr, call_mix(acc as u64, old));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, ProgramBuilder};

    #[test]
    fn evaluates_loops_and_stores() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 5);
        let i = b.var("i");
        b.for_loop(i, Expr::Const(0), Expr::Const(5), |b| {
            b.store(a, Expr::Var(i), Expr::mul(Expr::Var(i), Expr::Const(2)));
        });
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
        assert_eq!(mem.snapshot(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn if_selects_arm() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 2);
        let i = b.var("i");
        b.for_loop(i, Expr::Const(0), Expr::Const(2), |b| {
            b.if_else(
                Expr::lt(Expr::Var(i), Expr::Const(1)),
                |b| {
                    b.store(a, Expr::Var(i), Expr::Const(10));
                },
                |b| {
                    b.store(a, Expr::Var(i), Expr::Const(20));
                },
            );
        });
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
        assert_eq!(mem.snapshot(), vec![10, 20]);
    }

    #[test]
    fn loads_read_prior_stores() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 3);
        let t = b.var("t");
        b.store(a, Expr::Const(0), Expr::Const(7));
        b.load(t, a, Expr::Const(0));
        b.store(a, Expr::Const(2), Expr::add(Expr::Var(t), Expr::Const(1)));
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
        assert_eq!(mem.snapshot(), vec![7, 0, 8]);
    }

    #[test]
    fn trace_reports_accesses_with_addresses() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 2);
        let c = b.array("C", 2);
        let t = b.var("t");
        b.load(t, c, Expr::Const(1));
        b.store(a, Expr::Const(0), Expr::Var(t));
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        let mut events = Vec::new();
        Interp::new(&p).run_traced(&mut mem, &mut |e| events.push(e));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].addr, 3); // C[1] = base 2 + 1
        assert_eq!(events[0].kind, AccessKind::Read);
        assert_eq!(events[1].addr, 0); // A[0]
        assert_eq!(events[1].kind, AccessKind::Write);
    }

    #[test]
    fn calls_are_deterministic_and_touch_declared_arrays() {
        use crate::ir::CallEffect;
        let build = || {
            let mut b = ProgramBuilder::new();
            let a = b.array("A", 4);
            b.call(
                "update",
                vec![Expr::Const(2)],
                CallEffect {
                    may_write: vec![a],
                    ..CallEffect::default()
                },
            );
            b.finish()
        };
        let p1 = build();
        let p2 = build();
        let mut m1 = Memory::zeroed(&p1);
        let mut m2 = Memory::zeroed(&p2);
        Interp::new(&p1).run(&mut m1);
        Interp::new(&p2).run(&mut m2);
        let s1 = m1.snapshot();
        assert_eq!(s1, m2.snapshot());
        assert_ne!(s1[2], 0, "the call must write element arg0 % len");
        assert_eq!(s1[0], 0);
    }

    #[test]
    fn division_by_zero_is_total() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 1);
        b.store(
            a,
            Expr::Const(0),
            Expr::Bin(
                crate::ir::BinOp::Div,
                Box::new(Expr::Const(5)),
                Box::new(Expr::Const(0)),
            ),
        );
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
        assert_eq!(mem.snapshot(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_store_panics() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", 1);
        b.store(a, Expr::Const(5), Expr::Const(0));
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        Interp::new(&p).run(&mut mem);
    }

    #[test]
    fn memory_snapshot_restore_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.array("A", 3);
        let p = b.finish();
        let mut mem = Memory::from_contents(&p, vec![1, 2, 3]);
        let snap = mem.snapshot();
        unsafe { mem.write(1, 9) };
        mem.restore(&snap);
        assert_eq!(mem.snapshot(), vec![1, 2, 3]);
    }
}
