//! Concurrency stress tests for the runtime substrate: queue transfer
//! under contention and varying capacities, barrier phase integrity over
//! many generations, progress-board monotonicity, and checker admission
//! order independence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crossinvoc_runtime::signature::{AccessKind, AccessSignature, RangeSignature};
use crossinvoc_runtime::spsc::Queue;
use crossinvoc_runtime::SpinBarrier;
use crossinvoc_speccross::{CheckRequest, CheckerState, Position};

#[test]
fn spsc_transfer_is_lossless_across_capacities() {
    for capacity in [1usize, 2, 7, 64, 1024] {
        let (tx, rx) = Queue::with_capacity(capacity);
        const N: u64 = 20_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.produce(i * i);
            }
        });
        let mut sum = 0u64;
        for _ in 0..N {
            sum = sum.wrapping_add(rx.consume());
        }
        producer.join().unwrap();
        let expected = (0..N).map(|i| i * i).fold(0u64, u64::wrapping_add);
        assert_eq!(sum, expected, "capacity {capacity}");
    }
}

#[test]
fn barrier_keeps_phases_aligned_for_thousands_of_generations() {
    const THREADS: usize = 3;
    const GENERATIONS: u64 = 5_000;
    let barrier = Arc::new(SpinBarrier::new(THREADS));
    let phase = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let barrier = Arc::clone(&barrier);
        let phase = Arc::clone(&phase);
        handles.push(thread::spawn(move || {
            for g in 0..GENERATIONS {
                if barrier.wait(tid) {
                    // Exactly one serial thread per generation advances.
                    phase.store(g + 1, Ordering::SeqCst);
                }
                barrier.wait(tid);
                assert_eq!(phase.load(Ordering::SeqCst), g + 1, "thread {tid}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(barrier.generations(), GENERATIONS * 2);
}

fn req(tid: usize, epoch: u32, task: u32, snapshot: &[(u32, u32)], addr: usize) -> CheckRequest<RangeSignature> {
    let mut sig = RangeSignature::empty();
    sig.record(addr, AccessKind::Write);
    CheckRequest {
        tid,
        pos: Position { epoch, task },
        snapshot: snapshot
            .iter()
            .map(|&(e, t)| Position { epoch: e, task: t })
            .collect(),
        sig,
    }
}

/// The symmetric admit rule: a racing cross-epoch pair is caught no matter
/// which side's request reaches the checker first.
#[test]
fn checker_catches_conflicts_in_either_admission_order() {
    // Worker 0 runs <1,0>, worker 1 runs <2,0> concurrently; both write
    // address 9; each observed the other in flight.
    let early = req(0, 1, 0, &[(1, 0), (2, 0)], 9);
    let late = req(1, 2, 0, &[(1, 0), (2, 0)], 9);

    let mut forward = CheckerState::new(2);
    assert!(forward.admit(early.clone()).is_none());
    let c1 = forward.admit(late.clone()).expect("forward order");

    let mut backward = CheckerState::new(2);
    assert!(backward.admit(late).is_none());
    let c2 = backward.admit(early).expect("backward order");

    assert_eq!(c1, c2, "the detected pair is order-independent");
}

/// Pruning at a checkpoint epoch never removes entries that could still
/// race with requests from at or after that epoch.
#[test]
fn checker_pruning_is_safe_at_checkpoint_boundaries() {
    let mut state = CheckerState::new(2);
    for epoch in 0..10u32 {
        let tid = (epoch % 2) as usize;
        let mut snapshot = [(0u32, 0u32); 2];
        // Barrier-equivalent history: the other worker is observed past
        // its epoch-(epoch-1) work.
        snapshot[1 - tid] = (epoch, u32::MAX);
        snapshot[tid] = (epoch, 0);
        assert!(state.admit(req(tid, epoch, 0, &snapshot, 5)).is_none());
    }
    state.prune_before_epoch(8);
    // A new request racing with the epoch-8 leftover (worker 0's, observed
    // still in flight) must still be caught after pruning.
    let conflict = state.admit(req(1, 9, 1, &[(8, 0), (9, 1)], 5));
    assert!(conflict.is_some(), "post-prune race still detected");
}

/// Monotone combined-iteration numbering survives interleaved scheduling
/// from the pure logic under concurrent-looking streams.
#[test]
fn scheduler_numbers_are_strictly_monotone() {
    use crossinvoc_domore::logic::SchedulerLogic;
    let mut logic = SchedulerLogic::with_sparse_shadow();
    let mut conds = Vec::new();
    let mut last = None;
    for i in 0..1000usize {
        conds.clear();
        let n = logic.schedule_rw(i % 5, &[i % 13], &[(i * 7) % 13], &mut conds);
        if let Some(prev) = last {
            assert_eq!(n, prev + 1);
        }
        last = Some(n);
    }
}
