//! Workspace-level umbrella for the crossinvoc reproduction.
//!
//! This crate exists to host the repository's `examples/` and `tests/`
//! directories; all functionality lives in the member crates. See the
//! repository README and DESIGN.md for the system map.
#![deny(rustdoc::broken_intra_doc_links)]

pub use crossinvoc as core;
pub use crossinvoc_domore as domore;
pub use crossinvoc_pir as pir;
pub use crossinvoc_runtime as runtime;
pub use crossinvoc_sim as sim;
pub use crossinvoc_speccross as speccross;
pub use crossinvoc_workloads as workloads;
