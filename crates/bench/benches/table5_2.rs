//! Table 5.2 — scheduler/worker ratio for the DOMORE benchmarks.
//!
//! The ratio of the scheduler slice's work (prologue + `computeAddr` +
//! conflict detection + dispatch, per iteration) to the worker kernels'
//! work. The thesis reports BLACKSCHOLES 4.5%, CG 4.1%, ECLAT 12.5%,
//! FLUIDANIMATE-1 21.5%, LLUBENCH 1.7%, SYMM 1.5% — programs whose ratio is
//! large (ECLAT, FLUIDANIMATE) are exactly the ones whose DOMORE scaling
//! saturates early in Fig. 5.1.

use crossinvoc_bench::write_csv;
use crossinvoc_workloads::{registry, Scale};

/// Thesis-reported ratios for comparison.
fn paper_ratio(name: &str) -> Option<f64> {
    match name {
        "BLACKSCHOLES" => Some(4.5),
        "CG" => Some(4.1),
        "ECLAT" => Some(12.5),
        "FLUIDANIMATE-1" => Some(21.5),
        "LLUBENCH" => Some(1.7),
        "SYMM" => Some(1.5),
        _ => None,
    }
}

fn main() {
    println!("Table 5.2: Scheduler/worker ratio for benchmarks");
    println!("{:<16} {:>12} {:>12}", "Benchmark", "measured %", "paper %");
    let mut rows = Vec::new();
    for info in registry().into_iter().filter(|b| b.domore) {
        let model = info.model(Scale::Figure);
        let mut sched = 0u64;
        let mut worker = 0u64;
        for inv in 0..model.num_invocations() {
            sched += model.prologue_cost(inv);
            for iter in 0..model.num_iterations(inv) {
                sched += model.sched_cost(inv, iter);
                worker += model.iteration_cost(inv, iter);
            }
        }
        let measured = 100.0 * sched as f64 / worker as f64;
        let paper = paper_ratio(info.name);
        println!(
            "{:<16} {:>11.1}% {:>11}",
            info.name,
            measured,
            paper.map_or("-".to_owned(), |p| format!("{p:.1}%")),
        );
        rows.push(format!(
            "{},{:.2},{}",
            info.name,
            measured,
            paper.map_or(String::new(), |p| p.to_string())
        ));
    }
    write_csv("table5_2", "benchmark,measured_pct,paper_pct", &rows);
}
