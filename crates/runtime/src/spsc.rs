//! Lock-free single-producer/single-consumer queue.
//!
//! DOMORE forwards synchronization conditions from the scheduler thread to
//! each worker over a dedicated queue (§3.2.3 cites the lock-free design of
//! Giacomoni et al.'s FastForward-style queues), and SPECCROSS workers send
//! checking requests to the checker thread the same way. The queue here is a
//! bounded ring buffer with a cached head/tail pair per endpoint, which gives
//! the same single-writer/single-reader cache behaviour the paper relies on
//! for low communication latency.
//!
//! Blocking `produce`/`consume` wait adaptively — a bounded spin, then timed
//! parks on the endpoint's [`Parker`] (woken by the opposite endpoint) — so a
//! long-idle endpoint stops burning its core. Non-blocking `try_*` variants
//! are provided for the checker thread's polling loop, and
//! [`Producer::produce_batch`] / [`Consumer::consume_batch`] move runs of
//! messages with a single atomic publish per chunk to amortize queue traffic.

use std::cell::Cell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::wait::{AdaptiveSpin, Parker, PARK_SLICE};

/// Pads a field onto its own 64-byte cache line.
///
/// Each of the ring's four cross-thread fields lives in exactly one
/// endpoint's write set: the producer stores `tail` and pokes the consumer's
/// parker on every publish, the consumer stores `head` and pokes the
/// producer's parker on every free. Any two of them sharing a line would
/// make every operation on one endpoint invalidate the other's cached copy
/// (false sharing), which the batched produce/consume path makes hot enough
/// to matter.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Aligned<T>(T);

impl<T> std::ops::Deref for Aligned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

struct Ring<T> {
    buf: Box<[MaybeUninit<Cell<Option<T>>>]>,
    capacity: usize,
    head: Aligned<AtomicUsize>,
    tail: Aligned<AtomicUsize>,
    /// Where the consumer sleeps when the ring stays empty; the producer
    /// unparks it after publishing.
    consumer_parker: Aligned<Parker>,
    /// Where the producer sleeps when the ring stays full; the consumer
    /// unparks it after freeing slots.
    producer_parker: Aligned<Parker>,
}

// SAFETY: the producer only writes slots in `tail..tail+1` and the consumer
// only reads slots in `head..head+1`; the head/tail atomics order those
// accesses (release on publish, acquire on observe), so no slot is accessed
// concurrently from both endpoints.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn slot(&self, index: usize) -> *mut Option<T> {
        // Each slot is logically owned by exactly one side at a time; see the
        // Send/Sync justification above.
        self.buf[index % self.capacity].as_ptr() as *mut Option<T>
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: elements in head..tail were produced and never consumed.
            unsafe { std::ptr::drop_in_place(self.slot(i)) };
        }
    }
}

/// A bounded lock-free SPSC queue, split into its two endpoints.
///
/// Construct with [`Queue::with_capacity`]; the producer half is
/// [`Producer`], the consumer half [`Consumer`].
#[derive(Debug)]
pub struct Queue<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send> Queue<T> {
    /// Creates a queue holding at most `capacity` in-flight elements and
    /// returns its two endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "queue capacity must be positive");
        let mut buf = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            buf.push(MaybeUninit::new(Cell::new(None)));
        }
        let ring = Arc::new(Ring {
            buf: buf.into_boxed_slice(),
            capacity,
            head: Aligned(AtomicUsize::new(0)),
            tail: Aligned(AtomicUsize::new(0)),
            consumer_parker: Aligned(Parker::new()),
            producer_parker: Aligned(Parker::new()),
        });
        (
            Producer {
                ring: Arc::clone(&ring),
                cached_head: Cell::new(0),
            },
            Consumer {
                ring,
                cached_tail: Cell::new(0),
            },
        )
    }
}

/// The producing endpoint of a [`Queue`].
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Consumer position as last observed; refreshed only when the ring
    /// appears full, so the fast path touches a single cache line.
    cached_head: Cell<usize>,
}

impl<T: Send> Producer<T> {
    /// Attempts to enqueue `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the queue is full.
    pub fn try_produce(&self, value: T) -> Result<(), T> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail - self.cached_head.get() >= self.ring.capacity {
            self.cached_head.set(self.ring.head.load(Ordering::Acquire));
            if tail - self.cached_head.get() >= self.ring.capacity {
                return Err(value);
            }
        }
        // SAFETY: slot `tail` is unoccupied (tail - head < capacity) and only
        // this producer writes it.
        unsafe { std::ptr::write(self.ring.slot(tail), Some(value)) };
        self.ring.tail.store(tail + 1, Ordering::Release);
        self.ring.consumer_parker.unpark();
        Ok(())
    }

    /// Enqueues `value`, waiting adaptively (spin, then timed parks) while
    /// the queue is full.
    pub fn produce(&self, mut value: T) {
        let mut spin = AdaptiveSpin::new();
        loop {
            match self.try_produce(value) {
                Ok(()) => return,
                Err(v) => {
                    value = v;
                    if spin.should_park() {
                        self.ring.producer_parker.park_timeout(PARK_SLICE);
                    }
                }
            }
        }
    }

    /// Enqueues every element of `values` in order (leaving it empty),
    /// writing each run of free slots with a single atomic tail publish —
    /// the batched half of the scheduler→worker fast path. Waits adaptively
    /// whenever the ring fills mid-batch.
    pub fn produce_batch(&self, values: &mut Vec<T>) {
        let mut spin = AdaptiveSpin::new();
        while !values.is_empty() {
            if self.try_produce_batch(values) == 0 {
                if spin.should_park() {
                    self.ring.producer_parker.park_timeout(PARK_SLICE);
                }
            } else {
                spin = AdaptiveSpin::new();
            }
        }
    }

    /// Enqueues as many front elements of `values` as currently fit, in
    /// order, publishing the whole run with a single atomic tail store.
    /// Returns how many were moved — zero when the ring is full (or
    /// `values` is empty); never blocks. This is the abortable counterpart
    /// of [`Producer::produce_batch`]: a caller whose consumer may die
    /// (e.g. a SPECCROSS worker flushing to the checker) alternates this
    /// with a cancellation check instead of parking on a ring no one will
    /// ever drain.
    pub fn try_produce_batch(&self, values: &mut Vec<T>) -> usize {
        if values.is_empty() {
            return 0;
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail - self.cached_head.get() >= self.ring.capacity {
            self.cached_head.set(self.ring.head.load(Ordering::Acquire));
        }
        let free = self.ring.capacity - (tail - self.cached_head.get());
        if free == 0 {
            return 0;
        }
        let n = free.min(values.len());
        for (k, value) in values.drain(..n).enumerate() {
            // SAFETY: slots `tail..tail + n` are unoccupied
            // (tail + n - head <= capacity) and only this producer
            // writes them; the single Release store below publishes
            // the whole run.
            unsafe { std::ptr::write(self.ring.slot(tail + k), Some(value)) };
        }
        self.ring.tail.store(tail + n, Ordering::Release);
        self.ring.consumer_parker.unpark();
        n
    }

    /// Number of elements currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        tail - head
    }

    /// Whether the queue appears empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.ring.capacity)
            .finish()
    }
}

/// The consuming endpoint of a [`Queue`].
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Producer position as last observed; refreshed only when the ring
    /// appears empty.
    cached_tail: Cell<usize>,
}

impl<T: Send> Consumer<T> {
    /// Attempts to dequeue without blocking; returns `None` if empty.
    pub fn try_consume(&self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail.set(self.ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        // SAFETY: slot `head` was published by the producer (head < tail) and
        // only this consumer reads it.
        let value = unsafe { std::ptr::read(self.ring.slot(head)) };
        self.ring.head.store(head + 1, Ordering::Release);
        self.ring.producer_parker.unpark();
        value
    }

    /// Dequeues the next element, waiting adaptively (spin, then timed
    /// parks) while the queue is empty.
    pub fn consume(&self) -> T {
        let mut spin = AdaptiveSpin::new();
        loop {
            if let Some(v) = self.try_consume() {
                return v;
            }
            if spin.should_park() {
                self.ring.consumer_parker.park_timeout(PARK_SLICE);
            }
        }
    }

    /// Drains up to `max` available elements into `out` with a single atomic
    /// head publish, returning how many were moved (zero when the queue is
    /// empty — this never blocks).
    pub fn consume_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail.set(self.ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return 0;
            }
        }
        let n = (self.cached_tail.get() - head).min(max);
        out.reserve(n);
        for k in 0..n {
            // SAFETY: slots `head..head + n` were published by the producer
            // (head + n <= tail) and only this consumer reads them; the
            // single Release store below frees the whole run.
            let value = unsafe { std::ptr::read(self.ring.slot(head + k)) };
            out.extend(value);
        }
        self.ring.head.store(head + n, Ordering::Release);
        self.ring.producer_parker.unpark();
        n
    }

    /// Number of elements currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Acquire);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail - head
    }

    /// Whether the queue appears empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.ring.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = Queue::with_capacity(4);
        for i in 0..4 {
            tx.produce(i);
        }
        for i in 0..4 {
            assert_eq!(rx.consume(), i);
        }
    }

    #[test]
    fn try_produce_fails_when_full() {
        let (tx, rx) = Queue::with_capacity(2);
        assert!(tx.try_produce(1).is_ok());
        assert!(tx.try_produce(2).is_ok());
        assert_eq!(tx.try_produce(3), Err(3));
        assert_eq!(rx.try_consume(), Some(1));
        assert!(tx.try_produce(3).is_ok());
    }

    #[test]
    fn try_consume_fails_when_empty() {
        let (tx, rx) = Queue::<i32>::with_capacity(2);
        assert_eq!(rx.try_consume(), None);
        tx.produce(9);
        assert_eq!(rx.try_consume(), Some(9));
        assert_eq!(rx.try_consume(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = Queue::with_capacity(3);
        for i in 0..1000u32 {
            tx.produce(i);
            assert_eq!(rx.consume(), i);
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order_and_values() {
        const N: u64 = 100_000;
        let (tx, rx) = Queue::with_capacity(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.produce(i);
            }
        });
        let mut expected = 0;
        while expected < N {
            assert_eq!(rx.consume(), expected);
            expected += 1;
        }
        producer.join().unwrap();
    }

    #[test]
    fn batch_round_trip_preserves_order() {
        let (tx, rx) = Queue::with_capacity(8);
        let mut batch: Vec<u32> = (0..8).collect();
        tx.produce_batch(&mut batch);
        assert!(batch.is_empty());
        let mut out = Vec::new();
        assert_eq!(rx.consume_batch(&mut out, 8), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(rx.consume_batch(&mut out, 8), 0);
    }

    #[test]
    fn produce_batch_larger_than_capacity_completes_across_thread() {
        const N: u32 = 10_000;
        let (tx, rx) = Queue::with_capacity(16);
        let producer = thread::spawn(move || {
            let mut batch: Vec<u32> = (0..N).collect();
            tx.produce_batch(&mut batch);
        });
        let mut out = Vec::new();
        while out.len() < N as usize {
            if rx.consume_batch(&mut out, 64) == 0 {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(out, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn try_produce_batch_moves_only_what_fits() {
        let (tx, rx) = Queue::with_capacity(4);
        let mut batch: Vec<u32> = (0..6).collect();
        assert_eq!(tx.try_produce_batch(&mut batch), 4);
        assert_eq!(batch, vec![4, 5]);
        assert_eq!(tx.try_produce_batch(&mut batch), 0); // ring full
        let mut out = Vec::new();
        assert_eq!(rx.consume_batch(&mut out, 8), 4);
        assert_eq!(tx.try_produce_batch(&mut batch), 2);
        assert!(batch.is_empty());
        assert_eq!(rx.consume_batch(&mut out, 8), 2);
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(tx.try_produce_batch(&mut batch), 0); // nothing to move
    }

    #[test]
    fn consume_batch_respects_max() {
        let (tx, rx) = Queue::with_capacity(8);
        let mut batch: Vec<u32> = (0..6).collect();
        tx.produce_batch(&mut batch);
        let mut out = Vec::new();
        assert_eq!(rx.consume_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.consume_batch(&mut out, 4), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn parked_consumer_is_woken_by_produce() {
        // The consumer parks (nothing to do for well over the spin budget);
        // a late produce must still reach it promptly.
        let (tx, rx) = Queue::with_capacity(4);
        let consumer = thread::spawn(move || rx.consume());
        thread::sleep(std::time::Duration::from_millis(30));
        tx.produce(7u32);
        assert_eq!(consumer.join().unwrap(), 7);
    }

    #[test]
    fn drops_unconsumed_elements() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (tx, _rx) = Queue::with_capacity(8);
            tx.produce(D);
            tx.produce(D);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn len_tracks_in_flight_elements() {
        let (tx, rx) = Queue::with_capacity(8);
        assert!(tx.is_empty() && rx.is_empty());
        tx.produce(1);
        tx.produce(2);
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.consume();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Queue::<u8>::with_capacity(0);
    }

    #[test]
    fn hot_fields_live_on_distinct_cache_lines() {
        assert_eq!(std::mem::align_of::<Aligned<AtomicUsize>>(), 64);
        assert_eq!(std::mem::align_of::<Aligned<Parker>>(), 64);
        let r = Ring::<u64> {
            buf: Box::new([]),
            capacity: 1,
            head: Aligned(AtomicUsize::new(0)),
            tail: Aligned(AtomicUsize::new(0)),
            consumer_parker: Aligned(Parker::new()),
            producer_parker: Aligned(Parker::new()),
        };
        let mut offsets = [
            std::ptr::addr_of!(r.head) as usize,
            std::ptr::addr_of!(r.tail) as usize,
            std::ptr::addr_of!(r.consumer_parker) as usize,
            std::ptr::addr_of!(r.producer_parker) as usize,
        ];
        offsets.sort_unstable();
        for pair in offsets.windows(2) {
            assert!(
                pair[1] - pair[0] >= 64,
                "cross-thread fields must not share a 64-byte line: {offsets:?}"
            );
        }
        std::mem::forget(r); // `buf` is an empty fake; skip the drop scan
    }
}
