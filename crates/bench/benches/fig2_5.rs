//! Fig. 2.5 — DOACROSS vs. DSWP on a cyclic-dependence loop, swept over
//! communication latency.
//!
//! The background claim the thesis builds on (from the DSWP line of work):
//! DOACROSS places the cross-thread forwarding latency on the dependence
//! chain's critical path once per iteration, while DSWP's pipeline pays it
//! only to fill — so DOACROSS degrades with latency and DSWP does not.

use crossinvoc_bench::write_csv;
use crossinvoc_sim::pipeline::{doacross, dswp, StagedLoop};

fn main() {
    println!("Fig. 2.5: DOACROSS vs DSWP under communication latency");
    println!(
        "{:>12} {:>14} {:>10}",
        "comm (ns)", "DOACROSS spd", "DSWP spd"
    );
    // The Fig. 2.4 loop: a short pointer-chase stage feeding a heavy
    // work stage, split 2 ways.
    let staged = StagedLoop::new(20_000, vec![300, 700]);
    let seq = staged.sequential_ns();
    let mut rows = Vec::new();
    let mut first_da = 0.0f64;
    let mut last_da = f64::MAX;
    for comm in [0u64, 100, 300, 700, 1_500, 3_000] {
        let da = doacross(&staged, 2, comm).speedup_over(seq);
        let ds = dswp(&staged, comm).speedup_over(seq);
        println!("{comm:>12} {da:>13.2}x {ds:>9.2}x");
        rows.push(format!("{comm},{da:.4},{ds:.4}"));
        if comm == 0 {
            first_da = da;
        }
        last_da = da;
    }
    assert!(
        last_da < first_da / 1.5,
        "DOACROSS must degrade with latency"
    );
    write_csv("fig2_5", "comm_ns,doacross_speedup,dswp_speedup", &rows);
}
