//! `trace-report` — renders JSONL execution traces into the barrier-idle
//! breakdown, per-thread utilization timeline, misspeculation ledger,
//! critical-path attribution, and what-if wait analysis (see
//! `docs/OBSERVABILITY.md`).
//!
//! Traces come from a figure bench run with `CROSSINVOC_TRACE=1` (written
//! to `target/figures/<name>.trace.jsonl`), or from any engine run whose
//! `SpecReport`/`ExecutionReport` trace was serialized with
//! `Trace::to_jsonl`. Usage:
//!
//! ```text
//! trace-report [--strict] [--region N] [--chrome OUT] <trace.jsonl>...
//! ```
//!
//! * `--strict` — exit nonzero when any trace dropped records to ring
//!   overflow (for CI: a truncated trace silently understates every total).
//! * `--region N` — keep only records of region `N` before reporting, for
//!   merged region-server traces and flight-recorder dumps (`N = 0` selects
//!   solo-schema records, which carry no `region_id` field on the wire).
//! * `--chrome OUT` — additionally export Chrome/Perfetto trace_event JSON:
//!   with one input, to the file `OUT`; with several, into the directory
//!   `OUT` as `<stem>.chrome.json`. Open the result at `ui.perfetto.dev`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crossinvoc_runtime::critpath::{critical_path, what_if};
use crossinvoc_runtime::metrics::Histogram;
use crossinvoc_runtime::trace::{Event, Trace, TraceReport, WakeEdge};

struct Args {
    strict: bool,
    region: Option<u64>,
    chrome: Option<PathBuf>,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        strict: false,
        region: None,
        chrome: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => args.strict = true,
            "--region" => {
                let n = it.next().ok_or("--region needs a region id")?;
                args.region = Some(
                    n.parse()
                        .map_err(|_| format!("--region: invalid region id {n:?}"))?,
                );
            }
            "--chrome" => {
                let out = it.next().ok_or("--chrome needs an output path")?;
                args.chrome = Some(PathBuf::from(out));
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            path => args.paths.push(path.to_string()),
        }
    }
    Ok(args)
}

/// Output path of one trace's Chrome export under `--chrome OUT`.
fn chrome_path(out: &Path, input: &str, multiple: bool) -> PathBuf {
    if !multiple {
        return out.to_path_buf();
    }
    let stem = Path::new(input)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let stem = stem.strip_suffix(".trace.jsonl").unwrap_or(&stem);
    out.join(format!("{stem}.chrome.json"))
}

/// Renders the critical-path and what-if sections for one trace.
fn render_analysis(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let report = critical_path(trace);
    if report.steps == 0 {
        return out;
    }
    out.push_str(&report.to_string());
    // Wait-time quantiles, rebuilt from the trace's own leave records so
    // the report stands alone (no MetricsSummary needed).
    let waits = Histogram::new();
    let mut any = false;
    for rec in trace.records() {
        if let Event::BarrierLeave { wait_ns, .. } = rec.event {
            waits.record(wait_ns);
            any = true;
        }
    }
    if any {
        let _ = writeln!(out, "wait quantiles: {}", waits.snapshot());
    }
    // One what-if row per causality-edge class present in the trace.
    let mut rows = Vec::new();
    for edge in WakeEdge::ALL {
        let present = trace
            .records()
            .iter()
            .any(|r| matches!(r.event, Event::Wake { edge: e, .. } if e == edge));
        if !present {
            continue;
        }
        let wi = what_if(trace, &[edge]);
        rows.push(format!("  zero {edge:<10} {wi}"));
    }
    // Comparison column for static elision: the checker wait the trace
    // still carries (the zero-checker hypothetical above) next to the
    // admissions elision already took off the path for free.
    let (mut elided_tasks, mut elided_accesses) = (0u64, 0u64);
    for rec in trace.records() {
        if let Event::CheckElided {
            tasks, accesses, ..
        } = rec.event
        {
            elided_tasks += tasks;
            elided_accesses += accesses;
        }
    }
    if elided_tasks > 0 {
        let residual = what_if(trace, &[WakeEdge::Checker]);
        rows.push(format!(
            "  free elided checks: {elided_tasks} admits ({elided_accesses} accesses) already \
             skipped statically; residual checker wait {residual}"
        ));
    }
    if !rows.is_empty() {
        let _ = writeln!(out, "what-if (one edge class removed at a time):");
        for row in rows {
            let _ = writeln!(out, "{row}");
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace-report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.paths.is_empty() {
        eprintln!("usage: trace-report [--strict] [--region N] [--chrome OUT] <trace.jsonl>...");
        eprintln!(
            "hint: run a figure bench with CROSSINVOC_TRACE=1 to write \
             target/figures/<name>.trace.jsonl"
        );
        return ExitCode::FAILURE;
    }
    let multiple = args.paths.len() > 1;
    if let (Some(out), true) = (&args.chrome, multiple) {
        if let Err(err) = std::fs::create_dir_all(out) {
            eprintln!("trace-report: creating {}: {err}", out.display());
            return ExitCode::FAILURE;
        }
    }
    let mut failed = false;
    let mut total_dropped = 0u64;
    for path in &args.paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: {err}");
                failed = true;
                continue;
            }
        };
        let parsed = match args.region {
            Some(region) => Trace::from_jsonl_region(&text, region),
            None => Trace::from_jsonl(&text),
        };
        match parsed {
            Ok(trace) => {
                let report = TraceReport::from_trace(&trace);
                match args.region {
                    Some(region) => println!("== {path} (region {region})"),
                    None => println!("== {path}"),
                }
                if trace.dropped() > 0 {
                    total_dropped += trace.dropped();
                    println!(
                        "*** WARNING: {} records dropped by ring overflow — every total \
                         below is a lower bound. Raise the per-thread ring with \
                         CROSSINVOC_TRACE_CAP=<records>. ***",
                        trace.dropped()
                    );
                }
                print!("{}", report.render(&trace));
                print!("{}", render_analysis(&trace));
                if let Some(out) = &args.chrome {
                    let target = chrome_path(out, path, multiple);
                    match std::fs::write(&target, trace.to_chrome_json(None)) {
                        Ok(()) => println!("[wrote {}]", target.display()),
                        Err(err) => {
                            eprintln!("{}: {err}", target.display());
                            failed = true;
                        }
                    }
                }
                println!();
            }
            Err(err) => {
                eprintln!("{path}: {err}");
                failed = true;
            }
        }
    }
    if args.strict && total_dropped > 0 {
        eprintln!(
            "trace-report: --strict: {total_dropped} records dropped across inputs; \
             rerun with a larger CROSSINVOC_TRACE_CAP"
        );
        return ExitCode::FAILURE;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
