//! Region-server mode: one long-lived worker pool serving many concurrent
//! speculative regions.
//!
//! The classic entry points ([`SpecCrossEngine::execute`],
//! [`DomoreRuntime::execute`]) spawn a fresh scoped gang per region — fine
//! for one region at a time, wasteful and oversubscribing when a program has
//! many independent parallelized loop nests in flight. The [`RegionServer`]
//! owns a single [`WorkerPool`] and admits whole regions through a
//! submission front door:
//!
//! ```text
//!   submit_spec ──┐                       ┌─ worker/checker roles ─┐
//!   submit_domore ─┼─► region manager ───►│  shared WorkerPool     │─► Report
//!   submit_spec ──┘   (one thread each)   └─ FIFO gang admission ──┘
//! ```
//!
//! Each submission spawns one cheap *manager* thread that runs the engine's
//! `execute_on` against the shared pool. All per-region state — checker
//! shards, shadow memory, schedule memo, metrics, trace sinks, fault
//! budgets, degradation policy — lives in that manager's call frame, so a
//! panicking, degrading, or misspeculating region cannot poison its
//! neighbours: the pool's job wrapper contains role panics and re-raises
//! them only on the submitting manager, whose [`RegionHandle::join`] turns
//! them into [`RegionError::Panicked`].
//!
//! Fairness comes from the pool's all-or-nothing FIFO ticket admission:
//! gangs are granted in submission order and a wide region cannot be starved
//! by a stream of narrow ones (see [`crossinvoc_runtime::pool`]).
//!
//! Traces are attributed per region: the submitted `region_id` is stamped
//! into the engine config, and every JSONL record of that region's trace
//! carries a `region_id` field (id 0 stays wire-invisible, so solo traces
//! are byte-identical to the pre-region schema).

use std::sync::Arc;
use std::thread;

use crossinvoc_domore::runtime::{DomoreConfig, DomoreError, DomoreRuntime, ExecutionReport};
use crossinvoc_runtime::pool::WorkerPool;
use crossinvoc_runtime::signature::AccessSignature;
use crossinvoc_speccross::engine::{SpecConfig, SpecCrossEngine, SpecError, SpecReport};
use crossinvoc_speccross::workload::SpecWorkload;

use crossinvoc_domore::workload::DomoreWorkload;

/// Outcome of a region served by the [`RegionServer`].
#[derive(Debug, Clone)]
pub enum RegionReport {
    /// The region ran on the SPECCROSS engine.
    Spec(SpecReport),
    /// The region ran on the DOMORE runtime.
    Domore(ExecutionReport),
}

impl RegionReport {
    /// The SPECCROSS report, if this was a SPECCROSS region.
    pub fn spec(&self) -> Option<&SpecReport> {
        match self {
            RegionReport::Spec(r) => Some(r),
            RegionReport::Domore(_) => None,
        }
    }

    /// The DOMORE report, if this was a DOMORE region.
    pub fn domore(&self) -> Option<&ExecutionReport> {
        match self {
            RegionReport::Spec(_) => None,
            RegionReport::Domore(r) => Some(r),
        }
    }
}

/// Failure of a region served by the [`RegionServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// The SPECCROSS engine reported an error.
    Spec(SpecError),
    /// The DOMORE runtime reported an error.
    Domore(DomoreError),
    /// The region's manager thread panicked (an uncontained role panic is
    /// re-raised there by the pool). The payload message is preserved when
    /// it was a string.
    Panicked(String),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Spec(e) => write!(f, "speccross region failed: {e}"),
            RegionError::Domore(e) => write!(f, "domore region failed: {e}"),
            RegionError::Panicked(msg) => write!(f, "region manager panicked: {msg}"),
        }
    }
}

impl std::error::Error for RegionError {}

/// A joinable in-flight region submission.
#[derive(Debug)]
pub struct RegionHandle {
    region_id: u64,
    thread: thread::JoinHandle<Result<RegionReport, RegionError>>,
}

impl RegionHandle {
    /// The id this region's trace records are attributed to.
    pub fn region_id(&self) -> u64 {
        self.region_id
    }

    /// Blocks until the region completes and returns its report.
    ///
    /// # Errors
    ///
    /// [`RegionError::Spec`]/[`RegionError::Domore`] when the engine failed
    /// the region; [`RegionError::Panicked`] when the manager thread died.
    pub fn join(self) -> Result<RegionReport, RegionError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(RegionError::Panicked(msg))
            }
        }
    }
}

/// A long-lived server executing speculative regions on one shared pool.
///
/// See the [module docs](self) for the architecture; `tests/runtime_stress.rs`
/// exercises the fault-isolation matrix and `bench-suite --regions` gates
/// saturation behaviour in CI (BENCH_8).
#[derive(Debug, Clone)]
pub struct RegionServer {
    pool: Arc<WorkerPool>,
    next_region: Arc<std::sync::atomic::AtomicU64>,
}

impl RegionServer {
    /// Creates a server backed by a pool of `threads` workers.
    ///
    /// `threads` bounds the *sum of concurrently running gangs*, not the
    /// per-region width: a SPECCROSS region needs
    /// `num_workers + checker_shards` slots, a DOMORE region `num_workers`
    /// (its scheduler rides the manager thread). A region demanding more
    /// than `threads` slots is rejected with `InvalidConfig` at submission
    /// execution time rather than deadlocking.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: Arc::new(WorkerPool::new(threads)),
            next_region: Arc::new(std::sync::atomic::AtomicU64::new(1)),
        }
    }

    /// The shared pool, for callers that want to run `execute_on` inline on
    /// the current thread instead of through a manager.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Allocates a fresh nonzero region id (process-unique per server).
    pub fn next_region_id(&self) -> u64 {
        self.next_region
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Submits a SPECCROSS region (speculative-barrier mode).
    ///
    /// The engine runs `config.region(region_id)`, so the region's trace is
    /// attributed to `region_id`. Returns immediately; the region executes
    /// concurrently with any other in-flight submissions.
    pub fn submit_spec<S, W>(
        &self,
        region_id: u64,
        config: SpecConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        S: AccessSignature + 'static,
        W: SpecWorkload + Send + Sync + 'static,
    {
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let engine = SpecCrossEngine::<S>::new(config.region(region_id));
                engine
                    .execute_on(&*workload, &*pool)
                    .map(RegionReport::Spec)
                    .map_err(RegionError::Spec)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }

    /// Submits a SPECCROSS region in non-speculative barrier mode.
    pub fn submit_spec_barriers<S, W>(
        &self,
        region_id: u64,
        config: SpecConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        S: AccessSignature + 'static,
        W: SpecWorkload + Send + Sync + 'static,
    {
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let engine = SpecCrossEngine::<S>::new(config.region(region_id));
                engine
                    .execute_with_barriers_on(&*workload, &*pool)
                    .map(RegionReport::Spec)
                    .map_err(RegionError::Spec)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }

    /// Submits a DOMORE region. The manager thread doubles as the region's
    /// scheduler; only the workers draw from the shared pool.
    pub fn submit_domore<W>(
        &self,
        region_id: u64,
        config: DomoreConfig,
        workload: Arc<W>,
    ) -> RegionHandle
    where
        W: DomoreWorkload + Send + Sync + 'static,
    {
        let pool = Arc::clone(&self.pool);
        let thread = thread::Builder::new()
            .name(format!("crossinvoc-region-{region_id}"))
            .spawn(move || {
                let mut runtime = DomoreRuntime::new(config.region(region_id));
                runtime
                    .execute_on(&*workload, &*pool)
                    .map(RegionReport::Domore)
                    .map_err(RegionError::Domore)
            })
            .expect("spawn region manager thread");
        RegionHandle { region_id, thread }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossinvoc_runtime::signature::RangeSignature;
    use crossinvoc_runtime::ThreadId;
    use crossinvoc_speccross::workload::AccessRecorder;
    use std::sync::Mutex;

    /// Conflict-free grid: task `t` of every epoch increments cell `t`.
    struct IncGrid {
        cells: Vec<Mutex<u64>>,
        epochs: usize,
    }

    impl IncGrid {
        fn new(tasks: usize, epochs: usize) -> Self {
            Self {
                cells: (0..tasks).map(|_| Mutex::new(0)).collect(),
                epochs,
            }
        }
    }

    impl SpecWorkload for IncGrid {
        type State = Vec<u64>;

        fn num_epochs(&self) -> usize {
            self.epochs
        }

        fn num_tasks(&self, _epoch: usize) -> usize {
            self.cells.len()
        }

        fn execute_task(
            &self,
            _epoch: usize,
            task: usize,
            _tid: ThreadId,
            recorder: &mut dyn AccessRecorder,
        ) {
            recorder.record(task, crossinvoc_runtime::signature::AccessKind::Write);
            *self.cells[task].lock().unwrap() += 1;
        }

        fn snapshot(&self) -> Vec<u64> {
            self.cells.iter().map(|c| *c.lock().unwrap()).collect()
        }

        fn restore(&self, state: &Vec<u64>) {
            for (cell, v) in self.cells.iter().zip(state) {
                *cell.lock().unwrap() = *v;
            }
        }
    }

    struct DomoreGrid {
        cells: Vec<Mutex<u64>>,
        invocations: usize,
    }

    impl DomoreWorkload for DomoreGrid {
        fn num_invocations(&self) -> usize {
            self.invocations
        }

        fn num_iterations(&self, _inv: usize) -> usize {
            self.cells.len()
        }

        fn touched_addrs(&self, _inv: usize, iter: usize, out: &mut Vec<usize>) {
            out.push(iter);
        }

        fn execute_iteration(&self, _inv: usize, iter: usize, _tid: ThreadId) {
            *self.cells[iter].lock().unwrap() += 1;
        }

        fn address_space(&self) -> Option<usize> {
            Some(self.cells.len())
        }
    }

    #[test]
    fn concurrent_spec_and_domore_regions_share_one_pool() {
        let server = RegionServer::new(6);
        let spec = Arc::new(IncGrid::new(2, 8));
        let dom = Arc::new(DomoreGrid {
            cells: (0..4).map(|_| Mutex::new(0)).collect(),
            invocations: 5,
        });
        let h1 = server.submit_spec::<RangeSignature, _>(
            1,
            SpecConfig::with_workers(2).checker_shards(1),
            Arc::clone(&spec),
        );
        let h2 = server.submit_domore(2, DomoreConfig::with_workers(2), Arc::clone(&dom));
        let r1 = h1.join().expect("spec region");
        let r2 = h2.join().expect("domore region");
        assert_eq!(r1.spec().unwrap().stats.misspeculations, 0);
        assert!(r2.domore().is_some());
        assert!(spec.cells.iter().all(|c| *c.lock().unwrap() == 8));
        assert!(dom.cells.iter().all(|c| *c.lock().unwrap() == 5));
    }

    #[test]
    fn oversized_region_is_rejected_not_deadlocked() {
        let server = RegionServer::new(2);
        let spec = Arc::new(IncGrid::new(2, 2));
        // Demand = 4 workers + 1 shard = 5 > pool of 2.
        let h = server.submit_spec::<RangeSignature, _>(
            7,
            SpecConfig::with_workers(4).checker_shards(1),
            spec,
        );
        match h.join() {
            Err(RegionError::Spec(SpecError::InvalidConfig(msg))) => {
                assert!(msg.contains("caps gangs at 2"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn region_trace_is_stamped_with_its_id() {
        let server = RegionServer::new(4);
        let spec = Arc::new(IncGrid::new(2, 3));
        let h = server.submit_spec::<RangeSignature, _>(
            42,
            SpecConfig::with_workers(2).checker_shards(1).trace(256),
            spec,
        );
        let report = h.join().expect("region");
        let trace = report.spec().unwrap().trace.clone().expect("trace");
        assert_eq!(trace.region(), 42);
        assert!(trace.to_jsonl().contains("\"region_id\":42"));
    }
}
