//! Delta-debugging: shrinks a diverging case to a minimal counterexample.
//!
//! The shrinker is a greedy fixed-point loop over structural reductions,
//! each of which strictly simplifies the case:
//!
//! 1. drop individual fault specs;
//! 2. collapse engine knobs (workers → 1, checkpoint interval → 1, Bloom →
//!    Range signatures, distance gating and degradation off);
//! 3. drop individual statements (whole subtrees) anywhere in the program;
//! 4. bisect constant `for` trip counts toward the loop's lower bound.
//!
//! A candidate is kept when the caller's predicate still holds for it —
//! for real counterexamples, "some engine path still diverges from the
//! oracle" ([`still_diverges`]). Candidates whose program the oracle
//! rejects are never kept, so a minimized case is always a *valid*
//! program. The loop stops at a fixed point or when the candidate budget
//! runs out (divergent cases can be slow; the budget bounds total work).

use std::collections::HashSet;

use crossinvoc_pir::ir::{Expr, Program, ProgramBuilder, Stmt, StmtId};
use crossinvoc_runtime::FaultPlan;

use crate::diff::run_case;
use crate::gen::{FuzzCase, SigKind};
use crate::oracle::run_oracle;

/// Default candidate budget for [`minimize`].
pub const DEFAULT_BUDGET: usize = 400;

/// The real-counterexample predicate: the case still makes some engine
/// path diverge from the oracle. Oracle rejections do not count — a
/// shrink that breaks the program's validity is not a smaller failure.
pub fn still_diverges(case: &FuzzCase) -> bool {
    match run_case(case).divergence {
        Some(d) => d.path != "oracle",
        None => false,
    }
}

/// Shrinks `case` while [`still_diverges`] holds, with the default
/// candidate budget. Returns the case unchanged if it does not diverge.
pub fn minimize(case: &FuzzCase) -> FuzzCase {
    minimize_with(case, DEFAULT_BUDGET, &mut still_diverges)
}

/// Shrinks `case` while `fails` keeps returning `true`, evaluating at most
/// `budget` candidates. The predicate is also consulted once up front: if
/// the original case does not fail, it is returned untouched.
pub fn minimize_with(
    case: &FuzzCase,
    mut budget: usize,
    fails: &mut dyn FnMut(&FuzzCase) -> bool,
) -> FuzzCase {
    if !fails(case) {
        return case.clone();
    }
    let mut best = case.clone();

    // One accepted candidate restarts the pass (statement ids change when
    // the program is rebuilt); a full pass with no acceptance is the fixed
    // point.
    'outer: loop {
        for candidate in candidates(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if run_oracle(&candidate.program).is_err() {
                continue;
            }
            if fails(&candidate) {
                best = candidate;
                continue 'outer;
            }
        }
        break;
    }
    best.note = format!("minimized: {}", case.note);
    best
}

/// Enumerates every single-step reduction of `case`, simplest first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // 1. Fault-spec drops.
    let specs = case.faults.specs();
    for i in 0..specs.len() {
        let mut kept = specs.to_vec();
        kept.remove(i);
        let mut c = case.clone();
        c.faults = FaultPlan::from_specs(kept);
        out.push(c);
    }

    // 2. Knob collapses.
    if case.workers > 1 {
        let mut c = case.clone();
        c.workers = 1;
        out.push(c);
    }
    if case.checkpoint_every > 1 {
        let mut c = case.clone();
        c.checkpoint_every = 1;
        out.push(c);
    }
    if case.signature == SigKind::Bloom {
        let mut c = case.clone();
        c.signature = SigKind::Range;
        out.push(c);
    }
    if case.gate_distance {
        let mut c = case.clone();
        c.gate_distance = false;
        out.push(c);
    }
    if case.degrade {
        let mut c = case.clone();
        c.degrade = false;
        out.push(c);
    }

    // 3. Statement drops — every subtree root in the program.
    for id in case.program.subtrees(case.program.body()) {
        let mut drop = HashSet::new();
        drop.insert(id);
        let mut c = case.clone();
        c.program = rebuild(&case.program, &drop, &[]);
        out.push(c);
    }

    // 4. Trip bisection on constant-bound loops.
    for id in case.program.subtrees(case.program.body()) {
        let Stmt::For { from, to, .. } = case.program.stmt(id) else {
            continue;
        };
        let (Expr::Const(f), Expr::Const(t)) = (from, to) else {
            continue;
        };
        if t - f > 1 {
            let mid = f + (t - f) / 2;
            let mut c = case.clone();
            c.program = rebuild(&case.program, &HashSet::new(), &[(id, mid)]);
            out.push(c);
        }
    }

    out
}

/// Re-emits `program` through a fresh [`ProgramBuilder`], skipping the
/// subtrees rooted in `drop` and overriding the `to` bound of the listed
/// loops. Declarations are reproduced in order, so `VarId`/`ArrayId`
/// values carry over unchanged.
fn rebuild(program: &Program, drop: &HashSet<StmtId>, trips: &[(StmtId, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    for decl in program.arrays() {
        b.array(&decl.name, decl.len);
    }
    for name in program.vars() {
        b.var(name);
    }
    emit(&mut b, program, program.body(), drop, trips);
    b.finish()
}

fn emit(
    b: &mut ProgramBuilder,
    program: &Program,
    ids: &[StmtId],
    drop: &HashSet<StmtId>,
    trips: &[(StmtId, i64)],
) {
    for &id in ids {
        if drop.contains(&id) {
            continue;
        }
        match program.stmt(id) {
            Stmt::Assign { var, expr } => {
                b.assign(*var, expr.clone());
            }
            Stmt::Load { var, array, index } => {
                b.load(*var, *array, index.clone());
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                b.store(*array, index.clone(), value.clone());
            }
            Stmt::Call { name, args, effect } => {
                b.call(name, args.clone(), effect.clone());
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                b.if_else(
                    cond.clone(),
                    |b| emit(b, program, then_body, drop, trips),
                    |b| emit(b, program, else_body, drop, trips),
                );
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let to = trips
                    .iter()
                    .find(|&&(t, _)| t == id)
                    .map_or_else(|| to.clone(), |&(_, v)| Expr::Const(v));
                b.for_loop(*var, from.clone(), to, |b| {
                    emit(b, program, body, drop, trips);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    /// Synthetic failure: the program still writes array "A" somewhere.
    /// The minimizer should strip the case down to (almost) nothing but
    /// one such store, with every knob collapsed and faults gone.
    fn writes_a(case: &FuzzCase) -> bool {
        let a = case.program.arrays().iter().position(|d| d.name == "A");
        let Some(a) = a else { return false };
        case.program
            .subtrees(case.program.body())
            .iter()
            .any(|&id| matches!(case.program.stmt(id), Stmt::Store { array, .. } if array.0 == a))
    }

    #[test]
    fn shrinks_to_a_small_core_under_a_synthetic_predicate() {
        // Pick a spec-family seed (has an array "A") with non-trivial size.
        let params = GenParams::default();
        let case = (0..50)
            .map(|s| generate(s, &params))
            .find(|c| writes_a(c) && c.workers > 1 && !c.faults.is_empty())
            .expect("some seed yields a multi-worker faulty case writing A");

        let min = minimize_with(&case, 2000, &mut writes_a);
        assert!(writes_a(&min), "the failure must be preserved");
        assert_eq!(min.workers, 1);
        assert_eq!(min.checkpoint_every, 1);
        assert!(min.faults.is_empty(), "irrelevant faults must be dropped");
        assert!(
            min.program.num_stmts() < case.program.num_stmts(),
            "program must shrink ({} -> {})",
            case.program.num_stmts(),
            min.program.num_stmts()
        );
        // The oracle still accepts the minimized program.
        run_oracle(&min.program).unwrap();
    }

    #[test]
    fn non_failing_cases_are_returned_unchanged() {
        let case = generate(1, &GenParams::default());
        let min = minimize_with(&case, 100, &mut |_| false);
        assert_eq!(min.program, case.program);
        assert_eq!(min.note, case.note);
    }

    #[test]
    fn rebuild_is_identity_with_no_reductions() {
        for seed in 0..20 {
            let case = generate(seed, &GenParams::default());
            let same = rebuild(&case.program, &HashSet::new(), &[]);
            assert_eq!(same, case.program, "seed {seed}");
        }
    }
}
