//! Address-range sharding of the misspeculation checker.
//!
//! BENCH_5 showed that even with epoch-summary pruning a *single* checker
//! thread owns almost the whole critical path: every worker's check request
//! funnels through one serial admission loop. This module partitions the
//! admission work by address so independent shards can issue verdicts
//! concurrently.
//!
//! # Partition
//!
//! Addresses are interleaved over `n` shards: address `a` belongs to shard
//! `a % n` ([`ShardMap::shard_of`]). A request is *routed* to every shard
//! that owns at least one address of its signature's conservative
//! [`addr_span`](AccessSignature::addr_span) cover — one shard for a
//! single-address task, all of them once the span is at least `n` wide.
//! Each touched shard receives the **whole** signature (not a slice of it),
//! so a shard's conflict test is exactly the unsharded test restricted to
//! the requests routed to it.
//!
//! # Merge rule
//!
//! A task whose span touches several shards (*straddling* task) is admitted
//! only when **every** touched shard admits it; any shard's conflict is the
//! region verdict. [`ShardedChecker::admit`] logs the request into all
//! touched shards regardless, so later arrivals still see it, and returns
//! the first conflict in shard order.
//!
//! # Why verdicts are preserved
//!
//! For [`RangeSignature`](crossinvoc_runtime::signature::RangeSignature)s a
//! conflict between two signatures means two intervals overlap, so some
//! address `a` lies in both — and both spans cover `a`, so shard `a % n`
//! received both full signatures and reruns the exact unsharded test on
//! them. The overlap (racing) conditions depend only on positions and
//! snapshots, which every shard sees identically. Hence the sharded checker
//! conflicts exactly when the unsharded one does. Bloom filters weaken this
//! one-sidedly: a *false-positive* bit collision between span-disjoint
//! signatures reaches no common shard, so the sharded checker may report
//! strictly fewer (spurious) conflicts — fewer rollbacks, same final
//! memory. It never invents a conflict the unsharded checker would miss,
//! because each shard holds a subset of the unsharded log.

use crossinvoc_runtime::signature::AccessSignature;

use crate::check::{CheckRequest, CheckerState, Conflict};

/// Upper bound on checker shards, fixed by the `u64` [`ShardSet`] bitmask.
pub const MAX_SHARDS: usize = 64;

/// The address → shard partition: interleaved modulo the shard count.
///
/// Interleaving (rather than contiguous blocking) keeps clustered access
/// patterns — exactly the workloads Range signatures serve — spread across
/// all shards instead of hammering one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// Creates a map over `shards` shards, clamped to `1..=`[`MAX_SHARDS`].
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning address `addr`.
    pub fn shard_of(&self, addr: usize) -> usize {
        addr % self.shards
    }

    /// Every shard owning at least one address of the inclusive span.
    ///
    /// `None` (an empty signature) routes to shard 0 by convention: empty
    /// signatures never conflict but are still logged, and pinning them to
    /// one shard keeps `shards == 1` byte-identical to the unsharded
    /// checker.
    pub fn shards_for_span(&self, span: Option<(usize, usize)>) -> ShardSet {
        let Some((lo, hi)) = span else {
            return ShardSet::single(0);
        };
        debug_assert!(lo <= hi, "address spans are inclusive and ordered");
        // A span at least `shards` wide covers every residue class.
        // (`hi - lo` cannot overflow; comparing against `shards - 1` avoids
        // the `hi - lo + 1` overflow at span (0, usize::MAX).)
        if hi - lo >= self.shards - 1 {
            return ShardSet::all(self.shards);
        }
        let mut set = ShardSet::empty();
        for addr in lo..=hi {
            set.insert(self.shard_of(addr));
        }
        set
    }
}

/// A set of shard indices, packed into a `u64` bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSet(u64);

impl ShardSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self(0)
    }

    /// The singleton `{shard}`.
    pub fn single(shard: usize) -> Self {
        debug_assert!(shard < MAX_SHARDS);
        Self(1u64 << shard)
    }

    /// The full set `{0, .., shards-1}`.
    pub fn all(shards: usize) -> Self {
        debug_assert!((1..=MAX_SHARDS).contains(&shards));
        if shards == MAX_SHARDS {
            Self(u64::MAX)
        } else {
            Self((1u64 << shards) - 1)
        }
    }

    /// Adds `shard` to the set.
    pub fn insert(&mut self, shard: usize) {
        debug_assert!(shard < MAX_SHARDS);
        self.0 |= 1u64 << shard;
    }

    /// Whether `shard` is in the set.
    pub fn contains(&self, shard: usize) -> bool {
        shard < MAX_SHARDS && self.0 & (1u64 << shard) != 0
    }

    /// Number of shards in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in ascending shard order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let shard = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(shard)
        })
    }
}

/// `n` independent [`CheckerState`]s behind one admission interface.
///
/// This is the *pure* sharded checker: no threads, no rings. The threaded
/// engine gives each shard its own thread and SPSC rings and only shares
/// the routing logic ([`ShardMap`]); this struct is what the unit tests,
/// the proptests and the simulator reason about.
#[derive(Debug)]
pub struct ShardedChecker<S> {
    map: ShardMap,
    shards: Vec<CheckerState<S>>,
}

impl<S: AccessSignature> ShardedChecker<S> {
    /// Creates an empty sharded checker for `num_workers` workers over
    /// `shards` shards (clamped to `1..=`[`MAX_SHARDS`]).
    pub fn new(num_workers: usize, shards: usize) -> Self {
        Self::with_aggregates(num_workers, shards, true)
    }

    /// As [`ShardedChecker::new`], choosing whether each shard's per-epoch
    /// aggregate fast path is enabled.
    pub fn with_aggregates(num_workers: usize, shards: usize, enabled: bool) -> Self {
        let map = ShardMap::new(shards);
        Self {
            shards: (0..map.shards())
                .map(|_| CheckerState::with_aggregates(num_workers, enabled))
                .collect(),
            map,
        }
    }

    /// The address partition in use.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// Logs `req` into every shard its span touches and merges the shard
    /// verdicts: the task is admitted only when every touched shard admits;
    /// the first conflict in shard order is the region verdict.
    ///
    /// All touched shards are updated even after a conflict is found, so
    /// the logs stay complete for later arrivals (the engine aborts the
    /// pass on the first conflict anyway).
    pub fn admit(&mut self, req: CheckRequest<S>) -> Option<Conflict> {
        let set = self.map.shards_for_span(req.sig.addr_span());
        let mut found = None;
        for shard in set.iter() {
            let verdict = self.shards[shard].admit(req.clone());
            if found.is_none() {
                found = verdict;
            }
        }
        found
    }

    /// Discards requests from epochs before `epoch` in every shard.
    pub fn retire_before(&mut self, epoch: u32) {
        for shard in &mut self.shards {
            shard.retire_before(epoch);
        }
    }

    /// Total signature comparisons across shards. Straddling tasks are
    /// checked once per touched shard, so this can exceed the unsharded
    /// count — that duplication is the price of independent verdicts.
    pub fn comparisons(&self) -> u64 {
        self.shards.iter().map(|s| s.comparisons()).sum()
    }

    /// Total whole-epoch aggregate skips across shards.
    pub fn epoch_skips(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch_skips()).sum()
    }

    /// Total logged requests across shards (straddlers counted once per
    /// touched shard).
    pub fn logged(&self) -> usize {
        self.shards.iter().map(|s| s.logged()).sum()
    }

    /// The per-shard checker states, for inspection.
    pub fn shard_states(&self) -> &[CheckerState<S>] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Position;
    use crossinvoc_runtime::signature::{AccessKind, RangeSignature};
    use crossinvoc_runtime::ThreadId;

    fn sig(addrs: &[usize]) -> RangeSignature {
        let mut s = RangeSignature::empty();
        for &a in addrs {
            s.record(a, AccessKind::Write);
        }
        s
    }

    fn req(
        tid: ThreadId,
        epoch: u32,
        task: u32,
        snapshot: &[(u32, u32)],
        addrs: &[usize],
    ) -> CheckRequest<RangeSignature> {
        CheckRequest {
            tid,
            pos: Position { epoch, task },
            snapshot: snapshot
                .iter()
                .map(|&(e, t)| Position { epoch: e, task: t })
                .collect(),
            sig: sig(addrs),
        }
    }

    #[test]
    fn shard_map_clamps_and_interleaves() {
        assert_eq!(ShardMap::new(0).shards(), 1);
        assert_eq!(ShardMap::new(1000).shards(), MAX_SHARDS);
        let m = ShardMap::new(4);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(5), 1);
        assert_eq!(m.shard_of(7), 3);
    }

    #[test]
    fn span_routing_covers_every_owned_residue() {
        let m = ShardMap::new(4);
        // Empty signature → shard 0 by convention.
        assert_eq!(m.shards_for_span(None), ShardSet::single(0));
        // Single address → its owner only.
        assert_eq!(m.shards_for_span(Some((6, 6))), ShardSet::single(2));
        // Narrow straddle → exactly the covered residues.
        let set = m.shards_for_span(Some((6, 8)));
        assert_eq!(set.len(), 3);
        assert!(set.contains(2) && set.contains(3) && set.contains(0));
        assert!(!set.contains(1));
        // Width ≥ shards → broadcast.
        assert_eq!(m.shards_for_span(Some((10, 13))), ShardSet::all(4));
        assert_eq!(m.shards_for_span(Some((0, usize::MAX))), ShardSet::all(4));
    }

    #[test]
    fn shard_set_iterates_in_order() {
        let mut s = ShardSet::empty();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(1);
        s.insert(63);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 63]);
        assert_eq!(ShardSet::all(64).len(), 64);
        assert_eq!(ShardSet::all(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn straddling_task_is_admitted_when_every_shard_admits() {
        // Two straddling tasks with overlapping spans but disjoint write
        // ranges per the full signature: every touched shard sees both full
        // signatures, finds them disjoint, and admits.
        let mut c = ShardedChecker::new(2, 4);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[0, 5])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[6, 9])).is_none());
        // Both spans are ≥ 4 wide → both broadcast to all 4 shards.
        assert_eq!(c.logged(), 8);
    }

    #[test]
    fn straddling_conflict_is_the_region_verdict() {
        // The straddler overlaps a narrow task on exactly one shard; that
        // shard's conflict must surface as the admit verdict.
        let mut c = ShardedChecker::new(2, 4);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[6])).is_none());
        let conflict = c
            .admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[5, 7]))
            .expect("write ranges [5,7] and [6,6] overlap");
        assert_eq!(conflict.earlier, (0, Position { epoch: 1, task: 0 }));
        assert_eq!(conflict.later, (1, Position { epoch: 2, task: 0 }));
    }

    #[test]
    fn disjoint_shards_admit_concurrent_epochs() {
        // Tasks pinned to different residues never meet in any shard: no
        // comparisons at all, even across overlapping epochs.
        let mut c = ShardedChecker::new(2, 4);
        assert!(c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[4])).is_none());
        assert!(c.admit(req(1, 2, 0, &[(1, 0), (2, 0)], &[5])).is_none());
        assert_eq!(c.comparisons(), 0, "requests never shared a shard");
    }

    #[test]
    fn single_shard_matches_unsharded_checker_exactly() {
        // shard-count = 1 must reproduce today's checker byte-for-byte:
        // same verdicts, same comparison and skip counters, same log size.
        let stream = vec![
            req(0, 1, 0, &[(1, 0), (0, 0)], &[5]),
            req(1, 2, 0, &[(1, 0), (2, 0)], &[6]),
            req(0, 2, 0, &[(2, 0), (0, 0)], &[]),
            req(1, 3, 0, &[(2, 0), (3, 0)], &[5, 9]),
            req(0, 3, 0, &[(3, 0), (3, 0)], &[7]),
        ];
        let mut sharded = ShardedChecker::new(2, 1);
        let mut plain = CheckerState::new(2);
        for (i, r) in stream.into_iter().enumerate() {
            let a = sharded.admit(r.clone());
            let b = plain.admit(r);
            assert_eq!(a, b, "request {i}");
        }
        assert_eq!(sharded.comparisons(), plain.comparisons());
        assert_eq!(sharded.epoch_skips(), plain.epoch_skips());
        assert_eq!(sharded.logged(), plain.logged());
    }

    #[test]
    fn sharded_verdicts_match_unsharded_on_range_signatures() {
        // Range conflicts always share a concrete address, so the owning
        // shard reruns the unsharded test — conflict/no-conflict must agree
        // admission by admission for every shard count.
        let stream = vec![
            req(0, 1, 0, &[(1, 0), (0, 0), (0, 0)], &[3, 10]),
            req(1, 2, 0, &[(1, 0), (2, 0), (0, 0)], &[11, 12]),
            req(2, 2, 0, &[(1, 0), (2, 0), (2, 0)], &[40]),
            req(1, 3, 0, &[(1, 0), (3, 0), (2, 0)], &[9, 11]),
            req(0, 2, 0, &[(2, 0), (3, 0), (2, 0)], &[40, 44]),
        ];
        let mut reference = CheckerState::new(3);
        let expected: Vec<bool> = stream
            .iter()
            .map(|r| reference.admit(r.clone()).is_some())
            .collect();
        for shards in [2, 3, 8, 64] {
            let mut c = ShardedChecker::new(3, shards);
            for (i, r) in stream.iter().enumerate() {
                assert_eq!(
                    c.admit(r.clone()).is_some(),
                    expected[i],
                    "{shards} shards, request {i}"
                );
            }
        }
    }

    #[test]
    fn retire_before_prunes_every_shard() {
        let mut c = ShardedChecker::new(2, 4);
        c.admit(req(0, 1, 0, &[(1, 0), (0, 0)], &[0, 7])); // broadcast
        c.admit(req(0, 2, 0, &[(2, 0), (0, 0)], &[2]));
        assert_eq!(c.logged(), 5);
        c.retire_before(2);
        assert_eq!(c.logged(), 1, "epoch-1 copies retired in all shards");
    }
}
