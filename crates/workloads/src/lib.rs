//! The benchmark suite of Table 5.1, reproduced as workload *models*.
//!
//! Each benchmark module describes its program's parallel structure — how
//! many invocations/epochs, how many iterations/tasks, their costs, and the
//! shared addresses each iteration touches — derived from seeded synthetic
//! inputs that reproduce the dependence characteristics the thesis reports
//! (substitution S4 of DESIGN.md: e.g. CG's irregular row extents whose
//! update dependence manifests in ≈72% of outer iterations, ECLAT's
//! transaction-id collisions, FLUIDANIMATE's particle↔neighbour-cell
//! scatter).
//!
//! A model is used three ways:
//!
//! 1. **Simulation** — every model implements
//!    [`crossinvoc_sim::SimWorkload`], so the figure harness can regenerate
//!    Chapter 5's scaling curves deterministically.
//! 2. **Real execution** — [`kernel::AccessKernel`] wraps any model into a
//!    memory-mutating kernel implementing both runtime contracts
//!    ([`crossinvoc_domore::DomoreWorkload`] and
//!    [`crossinvoc_speccross::SpecWorkload`]): the declared accesses are
//!    *performed* on real shared memory with an order-sensitive mixing
//!    function, so the threaded runtimes are exercised end-to-end and
//!    validated against the sequential checksum.
//! 3. **Profiling** — the models feed the SPECCROSS dependence-distance
//!    profiler to produce the Table 5.3 parameters.
//!
//! See [`mod@registry`] for the Table 5.1 index.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod blackscholes;
pub mod cg;
pub mod eclat;
pub mod equake;
pub mod fdtd;
pub mod fluidanimate;
pub mod jacobi;
pub mod kernel;
pub mod llubench;
pub mod loopdep;
pub mod registry;
pub mod scale;
pub mod symm;

pub use kernel::AccessKernel;
pub use registry::{registry, BenchmarkInfo, InnerPlan};
pub use scale::Scale;
